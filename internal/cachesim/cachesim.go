// Package cachesim is the caching substrate: a byte-budgeted key-value
// cache modeled on the Redis scenario of "Harvesting Randomness to Optimize
// Distributed Systems" (HotNets 2017, §3, §5, Table 3).
//
// Like Redis with a maxmemory limit, the cache evicts by sampling a small
// uniform-random subset of resident items and asking a pluggable eviction
// policy to choose the victim among them (Redis's maxmemory-samples
// design). That sampling is precisely the "existing randomness" the paper
// harvests: a random-eviction policy gives every sampled candidate equal
// propensity, and the per-candidate contextual features (size, frequency,
// recency) plus the reconstructed reward (time until the evicted item is
// next requested) form the ⟨x, a, r, p⟩ exploration tuple.
//
// The cache keeps an access log and an eviction log; package harvester
// joins them (look-ahead, as in the paper: "we reconstruct this information
// during step 1 by looking ahead in the logs") to build the CB dataset.
package cachesim

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// Candidate describes one sampled eviction candidate at decision time.
type Candidate struct {
	Key        string
	Size       int64
	LastAccess float64 // virtual time of most recent access
	Frequency  int     // accesses since (re)insertion
	InsertedAt float64 // virtual time of (re)insertion
}

// NumCandidateFeatures is the dimension of Featurize's output.
const NumCandidateFeatures = 4

// Featurize encodes a candidate for the CB models: [size, frequency,
// recency, age], lightly scaled. Both the online CB evictor and the offline
// harvester use this same encoding so policies transfer.
func Featurize(c Candidate, now float64) core.Vector {
	return core.Vector{
		float64(c.Size) / 100,
		float64(c.Frequency),
		(now - c.LastAccess) / 100,
		(now - c.InsertedAt) / 100,
	}
}

// Evictor chooses which sampled candidate to evict.
type Evictor interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Choose returns the index into cands of the victim.
	Choose(cands []Candidate, now float64) int
}

// StochasticEvictor additionally exposes the probability of each choice,
// enabling exact propensity logging.
type StochasticEvictor interface {
	Evictor
	Distribution(cands []Candidate, now float64) []float64
}

// AccessRecord is one cache lookup in the access log.
type AccessRecord struct {
	Time float64
	Key  string
	Size int64
	Hit  bool
}

// EvictionRecord is one eviction decision in the eviction log: the sampled
// candidate set (the action space), the chosen victim, and its propensity.
type EvictionRecord struct {
	Time       float64
	Candidates []Candidate
	Chosen     int
	Propensity float64
}

// entry is the resident-item bookkeeping.
type entry struct {
	key        string
	size       int64
	lastAccess float64
	freq       int
	insertedAt float64
	slot       int // index into Cache.keys for O(1) sampling/removal
}

// Config parameterizes the cache.
type Config struct {
	// MaxBytes is the capacity budget (must be positive).
	MaxBytes int64
	// SampleSize is how many random candidates each eviction considers
	// (Redis maxmemory-samples; default 5).
	SampleSize int
	// LogAccesses / LogEvictions enable the harvestable logs.
	LogAccesses, LogEvictions bool
	// OnEvict, when non-nil, is called with each evicted key (used by the
	// RESP server to drop the value bytes it stores alongside).
	OnEvict func(key string)
}

// Cache is a byte-budgeted KV cache with sampled eviction. Not safe for
// concurrent use; the RESP server in package resp serializes access.
type Cache struct {
	cfg     Config
	used    int64
	entries map[string]*entry
	keys    []string // dense slice of resident keys for uniform sampling
	evictor Evictor
	r       *rand.Rand
	now     float64

	hits, misses, evictions int64
	accessLog               []AccessRecord
	evictionLog             []EvictionRecord
}

// New builds a cache. The rand source drives candidate sampling (and any
// randomized evictor should be seeded separately).
func New(cfg Config, ev Evictor, r *rand.Rand) (*Cache, error) {
	if cfg.MaxBytes <= 0 {
		return nil, fmt.Errorf("cachesim: MaxBytes %d", cfg.MaxBytes)
	}
	if cfg.SampleSize <= 0 {
		cfg.SampleSize = 5
	}
	if ev == nil {
		return nil, fmt.Errorf("cachesim: nil evictor")
	}
	if r == nil {
		return nil, fmt.Errorf("cachesim: nil rand")
	}
	return &Cache{
		cfg:     cfg,
		entries: make(map[string]*entry),
		evictor: ev,
		r:       r,
	}, nil
}

// Advance moves the cache's virtual clock forward to t (monotone).
func (c *Cache) Advance(t float64) {
	if t > c.now {
		c.now = t
	}
}

// Now returns the current virtual time.
func (c *Cache) Now() float64 { return c.now }

// Get looks up key, updating recency/frequency on a hit.
func (c *Cache) Get(key string) bool {
	e, ok := c.entries[key]
	if ok {
		e.lastAccess = c.now
		e.freq++
		c.hits++
	} else {
		c.misses++
	}
	if c.cfg.LogAccesses {
		var size int64
		if ok {
			size = e.size
		}
		c.accessLog = append(c.accessLog, AccessRecord{Time: c.now, Key: key, Size: size, Hit: ok})
	}
	return ok
}

// Set inserts or updates key with the given size, evicting as needed. It
// fails if a single item exceeds the whole budget.
func (c *Cache) Set(key string, size int64) error {
	if size <= 0 {
		return fmt.Errorf("cachesim: item %q size %d", key, size)
	}
	if size > c.cfg.MaxBytes {
		return fmt.Errorf("cachesim: item %q size %d exceeds budget %d", key, size, c.cfg.MaxBytes)
	}
	if e, ok := c.entries[key]; ok {
		c.used += size - e.size
		e.size = size
		e.lastAccess = c.now
		e.freq++
		for c.used > c.cfg.MaxBytes {
			if err := c.evictOne(key); err != nil {
				return err
			}
		}
		return nil
	}
	for c.used+size > c.cfg.MaxBytes {
		if err := c.evictOne(""); err != nil {
			return err
		}
	}
	e := &entry{
		key: key, size: size,
		lastAccess: c.now, freq: 1, insertedAt: c.now,
		slot: len(c.keys),
	}
	c.entries[key] = e
	c.keys = append(c.keys, key)
	c.used += size
	return nil
}

// Delete removes key, returning whether it was resident.
func (c *Cache) Delete(key string) bool {
	e, ok := c.entries[key]
	if !ok {
		return false
	}
	c.remove(e)
	return true
}

// Flush empties the cache (logs are retained).
func (c *Cache) Flush() {
	c.entries = make(map[string]*entry)
	c.keys = c.keys[:0]
	c.used = 0
}

// remove unlinks an entry with O(1) slot swap.
func (c *Cache) remove(e *entry) {
	last := len(c.keys) - 1
	moved := c.keys[last]
	c.keys[e.slot] = moved
	c.entries[moved].slot = e.slot
	c.keys = c.keys[:last]
	delete(c.entries, e.key)
	c.used -= e.size
}

// evictOne samples candidates and asks the evictor for a victim. protect is
// a key that must not be evicted (an item being resized in place).
func (c *Cache) evictOne(protect string) error {
	if len(c.keys) == 0 {
		return fmt.Errorf("cachesim: nothing to evict but over budget")
	}
	cands := c.sampleCandidates(protect)
	if len(cands) == 0 {
		return fmt.Errorf("cachesim: no eviction candidates (all protected)")
	}
	idx := c.evictor.Choose(cands, c.now)
	if idx < 0 || idx >= len(cands) {
		return fmt.Errorf("cachesim: evictor %q chose %d of %d candidates", c.evictor.Name(), idx, len(cands))
	}
	if c.cfg.LogEvictions {
		p := 1.0
		if se, ok := c.evictor.(StochasticEvictor); ok {
			p = se.Distribution(cands, c.now)[idx]
		}
		rec := EvictionRecord{
			Time:       c.now,
			Candidates: append([]Candidate(nil), cands...),
			Chosen:     idx,
			Propensity: p,
		}
		c.evictionLog = append(c.evictionLog, rec)
	}
	victim := c.entries[cands[idx].Key]
	c.remove(victim)
	c.evictions++
	if c.cfg.OnEvict != nil {
		c.cfg.OnEvict(victim.key)
	}
	return nil
}

// sampleCandidates draws up to SampleSize distinct resident items uniformly
// at random (a partial Fisher–Yates over the dense key slice).
func (c *Cache) sampleCandidates(protect string) []Candidate {
	n := len(c.keys)
	k := c.cfg.SampleSize
	if k > n {
		k = n
	}
	cands := make([]Candidate, 0, k)
	// Partial Fisher–Yates: swap chosen keys toward the front. The slice
	// order is irrelevant to correctness, so we can leave it shuffled.
	for i := 0; i < k; i++ {
		j := i + c.r.Intn(n-i)
		c.keys[i], c.keys[j] = c.keys[j], c.keys[i]
		c.entries[c.keys[i]].slot = i
		c.entries[c.keys[j]].slot = j
		key := c.keys[i]
		if key == protect {
			continue
		}
		e := c.entries[key]
		cands = append(cands, Candidate{
			Key: e.key, Size: e.size,
			LastAccess: e.lastAccess, Frequency: e.freq, InsertedAt: e.insertedAt,
		})
	}
	return cands
}

// Contains reports residency without touching recency/frequency.
func (c *Cache) Contains(key string) bool {
	_, ok := c.entries[key]
	return ok
}

// Stats reports cumulative counters.
type Stats struct {
	Hits, Misses, Evictions int64
	UsedBytes, MaxBytes     int64
	Items                   int
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		UsedBytes: c.used, MaxBytes: c.cfg.MaxBytes, Items: len(c.entries),
	}
}

// HitRate returns hits/(hits+misses), or 0 before any access.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// AccessLog returns the recorded accesses (nil unless enabled).
func (c *Cache) AccessLog() []AccessRecord { return c.accessLog }

// EvictionLog returns the recorded eviction decisions (nil unless enabled).
func (c *Cache) EvictionLog() []EvictionRecord { return c.evictionLog }
