package cachesim

import (
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/ope"
)

// RandomEvictor evicts a uniformly random candidate — Redis's
// maxmemory-policy allkeys-random and the paper's exploration source.
type RandomEvictor struct {
	R *rand.Rand
}

// Name implements Evictor.
func (RandomEvictor) Name() string { return "random" }

// Choose implements Evictor.
func (e RandomEvictor) Choose(cands []Candidate, now float64) int {
	return e.R.Intn(len(cands))
}

// Distribution implements StochasticEvictor: uniform over candidates.
func (RandomEvictor) Distribution(cands []Candidate, now float64) []float64 {
	d := make([]float64, len(cands))
	p := 1 / float64(len(cands))
	for i := range d {
		d[i] = p
	}
	return d
}

// LRUEvictor evicts the least-recently-used candidate (Redis approximated
// LRU: true LRU restricted to the sampled candidates).
type LRUEvictor struct{}

// Name implements Evictor.
func (LRUEvictor) Name() string { return "lru" }

// Choose implements Evictor.
func (LRUEvictor) Choose(cands []Candidate, now float64) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].LastAccess < cands[best].LastAccess {
			best = i
		}
	}
	return best
}

// LFUEvictor evicts the least-frequently-used candidate.
type LFUEvictor struct{}

// Name implements Evictor.
func (LFUEvictor) Name() string { return "lfu" }

// Choose implements Evictor.
func (LFUEvictor) Choose(cands []Candidate, now float64) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].Frequency < cands[best].Frequency {
			best = i
		}
	}
	return best
}

// FreqSizeEvictor evicts the candidate with the lowest frequency/size ratio
// — the paper's manually designed policy that "explicitly considers item
// size" and wins Table 3 by ten points: keeping bytes that are accessed
// often per unit of space.
type FreqSizeEvictor struct{}

// Name implements Evictor.
func (FreqSizeEvictor) Name() string { return "freq/size" }

// Choose implements Evictor.
func (FreqSizeEvictor) Choose(cands []Candidate, now float64) int {
	best := 0
	bestV := math.Inf(1)
	for i := range cands {
		v := float64(cands[i].Frequency) / float64(cands[i].Size)
		if v < bestV {
			best, bestV = i, v
		}
	}
	return best
}

// CBEvictor evicts greedily by a learned reward model: the reward of
// evicting an item is the time until it is next requested (paper Table 1,
// "Reward (CB): [+] time to next access of evicted item"), so the greedy
// action evicts the candidate with the largest predicted next-access gap.
// This is the Table 3 "CB policy".
type CBEvictor struct {
	Model ope.RewardModel
}

// Name implements Evictor.
func (CBEvictor) Name() string { return "cb" }

// Choose implements Evictor.
func (e CBEvictor) Choose(cands []Candidate, now float64) int {
	ctx := ContextFromCandidates(cands, now)
	best := 0
	bestV := math.Inf(-1)
	for i := range cands {
		v := e.Model.Predict(&ctx, core.Action(i))
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// EpsilonEvictor mixes a base evictor with uniform random exploration so a
// deterministic heuristic still produces harvestable data.
type EpsilonEvictor struct {
	Base    Evictor
	Epsilon float64
	R       *rand.Rand
}

// Name implements Evictor.
func (e EpsilonEvictor) Name() string { return "eps-" + e.Base.Name() }

// Choose implements Evictor.
func (e EpsilonEvictor) Choose(cands []Candidate, now float64) int {
	if e.R.Float64() < e.Epsilon {
		return e.R.Intn(len(cands))
	}
	return e.Base.Choose(cands, now)
}

// Distribution implements StochasticEvictor.
func (e EpsilonEvictor) Distribution(cands []Candidate, now float64) []float64 {
	d := make([]float64, len(cands))
	for i := range d {
		d[i] = e.Epsilon / float64(len(cands))
	}
	d[e.Base.Choose(cands, now)] += 1 - e.Epsilon
	return d
}

// ContextFromCandidates encodes a sampled candidate set as a CB context
// with per-action features — the bridge between cache state and the
// core/ope/learn stack. The same encoding is used when harvesting eviction
// logs, so models trained offline drive CBEvictor online unchanged.
func ContextFromCandidates(cands []Candidate, now float64) core.Context {
	af := make([]core.Vector, len(cands))
	for i, c := range cands {
		af[i] = Featurize(c, now)
	}
	return core.Context{ActionFeatures: af, NumActions: len(cands)}
}
