package cachesim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Trace is a fixed request sequence, enabling clairvoyant baselines.
type Trace []Request

// GenerateTrace materializes n workload requests so the same sequence can
// be replayed under different policies — including the Belady oracle,
// which needs to see the future.
func GenerateTrace(w Workload, r *rand.Rand, n int) (Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cachesim: trace of %d requests", n)
	}
	tr := make(Trace, n)
	for i := range tr {
		tr[i] = w.Draw(r)
	}
	return tr, nil
}

// ReplayTrace drives a fixed trace through the cache (read-through), one
// virtual time unit per request, returning the hit rate.
func ReplayTrace(c *Cache, tr Trace) (float64, error) {
	if len(tr) == 0 {
		return 0, fmt.Errorf("cachesim: empty trace")
	}
	for i, req := range tr {
		c.Advance(float64(i))
		if !c.Get(req.Key) {
			if err := c.Set(req.Key, req.Size); err != nil {
				return 0, fmt.Errorf("cachesim: trace request %d: %w", i, err)
			}
		}
	}
	return c.HitRate(), nil
}

// Oracle answers "when is this key next requested after time t?" for a
// fixed trace — the future knowledge Belady's algorithm requires.
type Oracle struct {
	accessTimes map[string][]float64
}

// BuildOracle indexes a trace (request i occurs at virtual time i, matching
// ReplayTrace's clock).
func BuildOracle(tr Trace) *Oracle {
	idx := make(map[string][]float64)
	for i, req := range tr {
		idx[req.Key] = append(idx[req.Key], float64(i))
	}
	return &Oracle{accessTimes: idx}
}

// NextAfter returns the first access of key strictly after time t, or +Inf
// if it is never requested again.
func (o *Oracle) NextAfter(key string, t float64) float64 {
	times := o.accessTimes[key]
	i := sort.SearchFloat64s(times, t)
	for i < len(times) && times[i] <= t {
		i++
	}
	if i >= len(times) {
		return math.Inf(1)
	}
	return times[i]
}

// BeladyEvictor is the clairvoyant baseline: among the sampled candidates
// it evicts the one whose next access lies farthest in the future —
// optimal (restricted to the sample) for uniform item sizes, and a strong
// skyline for Table 3 even with mixed sizes. No deployable policy can use
// it; it exists to show how much headroom the learned policies leave.
type BeladyEvictor struct {
	Oracle *Oracle
}

// Name implements Evictor.
func (BeladyEvictor) Name() string { return "belady" }

// Choose implements Evictor.
func (e BeladyEvictor) Choose(cands []Candidate, now float64) int {
	best := 0
	bestNext := -1.0
	for i := range cands {
		next := e.Oracle.NextAfter(cands[i].Key, now)
		if next > bestNext {
			best, bestNext = i, next
		}
	}
	return best
}

// SizeAwareBeladyEvictor refines the oracle for mixed sizes: it evicts the
// candidate with the lowest "hits saved per byte" density 1/(size·gap),
// i.e. the largest size·(next-access gap) product — the clairvoyant analog
// of freq/size.
type SizeAwareBeladyEvictor struct {
	Oracle *Oracle
}

// Name implements Evictor.
func (SizeAwareBeladyEvictor) Name() string { return "belady-size" }

// Choose implements Evictor.
func (e SizeAwareBeladyEvictor) Choose(cands []Candidate, now float64) int {
	best := 0
	bestScore := -1.0
	for i := range cands {
		gap := e.Oracle.NextAfter(cands[i].Key, now) - now
		score := gap * float64(cands[i].Size)
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}
