package cachesim

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/stats"
)

func TestBigSmallValidate(t *testing.T) {
	if err := DefaultBigSmall().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultBigSmall()
	bad.NumLarge = 0
	if err := bad.Validate(); err == nil {
		t.Error("NumLarge=0 should fail")
	}
	bad = DefaultBigSmall()
	bad.SmallSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("SmallSize=0 should fail")
	}
	bad = DefaultBigSmall()
	bad.LargeWeight = 0
	if err := bad.Validate(); err == nil {
		t.Error("LargeWeight=0 should fail")
	}
}

func TestBigSmallFrequencies(t *testing.T) {
	w := DefaultBigSmall()
	r := stats.NewRand(1)
	large, small := 0, 0
	perLarge := map[string]int{}
	perSmall := map[string]int{}
	n := 200000
	for i := 0; i < n; i++ {
		req := w.Draw(r)
		if strings.HasPrefix(req.Key, "L") {
			large++
			perLarge[req.Key]++
			if req.Size != w.LargeSize {
				t.Fatalf("large size = %d", req.Size)
			}
		} else {
			small++
			perSmall[req.Key]++
			if req.Size != w.SmallSize {
				t.Fatalf("small size = %d", req.Size)
			}
		}
	}
	// Per-item frequency ratio should be ≈ LargeWeight (2).
	meanLarge := float64(large) / float64(w.NumLarge)
	meanSmall := float64(small) / float64(w.NumSmall)
	ratio := meanLarge / meanSmall
	if ratio < 1.85 || ratio > 2.15 {
		t.Errorf("per-item frequency ratio = %v, want ≈2", ratio)
	}
	if len(perLarge) != w.NumLarge {
		t.Errorf("only %d of %d large keys seen", len(perLarge), w.NumLarge)
	}
}

func TestTotalBytes(t *testing.T) {
	w := DefaultBigSmall()
	want := int64(w.NumLarge)*w.LargeSize + int64(w.NumSmall)*w.SmallSize
	if w.TotalBytes() != want {
		t.Errorf("TotalBytes = %d, want %d", w.TotalBytes(), want)
	}
	if w.LargeSize != 4*w.SmallSize {
		t.Errorf("paper parameter broken: large should be 4x small (got %d vs %d)", w.LargeSize, w.SmallSize)
	}
}

func TestZipfWorkload(t *testing.T) {
	w := &ZipfWorkload{NumKeys: 100, Size: 10, Exponent: 1}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	r := stats.NewRand(2)
	counts := map[string]int{}
	for i := 0; i < 50000; i++ {
		req := w.Draw(r)
		if req.Size != 10 {
			t.Fatalf("size = %d", req.Size)
		}
		counts[req.Key]++
	}
	if counts["Z000000"] <= counts["Z000050"] {
		t.Error("zipf should be head-heavy")
	}
	bad := &ZipfWorkload{}
	if err := bad.Validate(); err == nil {
		t.Error("zero-value zipf should fail validation")
	}
}

// TestZipfConcurrentDraws is the regression test for the lazy-CDF data
// race: a validated workload shared by concurrent replicates (as the
// parallel experiment scheduler shares it) must be read-only in Draw. Run
// under -race this fails if Validate stops precomputing the CDF.
func TestZipfConcurrentDraws(t *testing.T) {
	w := &ZipfWorkload{NumKeys: 500, Size: 10, Exponent: 1}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := stats.NewRand(seed)
			for i := 0; i < 2000; i++ {
				if req := w.Draw(r); req.Size != 10 {
					t.Errorf("size = %d", req.Size)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

func TestReplayComputesHitRate(t *testing.T) {
	w := DefaultBigSmall()
	cfg := Config{MaxBytes: w.TotalBytes() / 3, SampleSize: 5}
	c := newCache(t, cfg, RandomEvictor{R: stats.NewRand(3)}, 4)
	hr, err := Replay(c, w, stats.NewRand(5), 30000)
	if err != nil {
		t.Fatal(err)
	}
	if hr <= 0.1 || hr >= 0.95 {
		t.Errorf("hit rate %v outside plausible band", hr)
	}
	if _, err := Replay(c, w, stats.NewRand(5), 0); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestTable3Ordering(t *testing.T) {
	// The Table 3 shape: freq/size ≫ random ≈ lru, and lfu worse than
	// random. (The CB policy is exercised in the experiments package.)
	w := DefaultBigSmall()
	run := func(ev Evictor, seed int64) float64 {
		cfg := Table3CacheConfig(w)
		cfg.LogAccesses, cfg.LogEvictions = false, false
		c := newCache(t, cfg, ev, seed)
		hr, err := Replay(c, w, stats.NewRand(seed+100), 60000)
		if err != nil {
			t.Fatal(err)
		}
		return hr
	}
	random := run(RandomEvictor{R: stats.NewRand(10)}, 11)
	lru := run(LRUEvictor{}, 12)
	lfu := run(LFUEvictor{}, 13)
	fs := run(FreqSizeEvictor{}, 14)

	if fs < random+0.05 {
		t.Errorf("freq/size %v should beat random %v by ≥5 points", fs, random)
	}
	if lfu >= random {
		t.Errorf("lfu %v should lag random %v", lfu, random)
	}
	if diff := lru - random; diff > 0.05 || diff < -0.05 {
		t.Errorf("lru %v should be within 5 points of random %v", lru, random)
	}
}
