package obs

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/des"
)

// TestTracerVirtualClock drives the tracer from a des.Simulator clock:
// span durations must equal the virtual time elapsed between Start and
// End, nesting must be reconstructable from parent IDs, and the root
// span's duration must equal the whole simulated wall time — the property
// the -trace acceptance rests on.
func TestTracerVirtualClock(t *testing.T) {
	var sim des.Simulator
	clock := SimClock{Sim: &sim}
	var buf strings.Builder
	tr := NewTracer(&buf, clock)

	advance := func(seconds float64) {
		if _, err := sim.After(seconds, func() {}); err != nil {
			t.Fatal(err)
		}
		sim.Step()
	}

	root := tr.Start("experiment/fig3", nil, map[string]any{"seed": int64(1)})
	for i := 0; i < 3; i++ {
		batch := tr.Start("replicates", root, map[string]any{"n": 100})
		advance(1.5)
		batch.End()
	}
	tr.Event("checkpoint", root, nil)
	root.End()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	var spans, events []Record
	for _, r := range recs {
		if r.Type == "span" {
			spans = append(spans, r)
		} else {
			events = append(events, r)
		}
	}
	if len(spans) != 4 || len(events) != 1 {
		t.Fatalf("got %d spans, %d events", len(spans), len(events))
	}
	// Spans are written on End: the three batches come first, root last.
	rootRec := spans[3]
	if rootRec.Name != "experiment/fig3" || rootRec.Parent != 0 {
		t.Fatalf("root record = %+v", rootRec)
	}
	for i, b := range spans[:3] {
		if b.Name != "replicates" || b.Parent != rootRec.ID {
			t.Errorf("batch %d = %+v, want parent %d", i, b, rootRec.ID)
		}
		if b.DurUS != 1_500_000 {
			t.Errorf("batch %d duration = %dus, want 1.5s", i, b.DurUS)
		}
		if want := int64(i) * 1_500_000; b.StartUS != want {
			t.Errorf("batch %d start = %dus, want %d", i, b.StartUS, want)
		}
	}
	// Total traced duration equals the simulated wall time exactly.
	if rootRec.DurUS != 4_500_000 {
		t.Errorf("root duration = %dus, want 4.5s of virtual time", rootRec.DurUS)
	}
	if rootRec.Attrs["seed"] != float64(1) { // JSON numbers decode as float64
		t.Errorf("root attrs = %v", rootRec.Attrs)
	}
	if events[0].Parent != rootRec.ID || events[0].DurUS != 0 {
		t.Errorf("event = %+v", events[0])
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x", nil, nil)
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	sp.End()
	sp.SetAttr("k", 1)
	if sp.ID() != 0 {
		t.Error("nil span has an ID")
	}
	tr.Event("e", nil, nil)
	if tr.Err() != nil {
		t.Error("nil tracer has an error")
	}
}

func TestTracerDoubleEndWritesOnce(t *testing.T) {
	var buf strings.Builder
	tr := NewTracer(&buf, &FixedClock{T: time.Unix(100, 0)})
	sp := tr.Start("once", nil, nil)
	sp.End()
	sp.End()
	recs, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Errorf("got %d records, want 1", len(recs))
	}
	if recs[0].StartUS != 100_000_000 {
		t.Errorf("start = %d", recs[0].StartUS)
	}
}

func TestReadTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad json":       "{not json}\n",
		"unknown type":   `{"type":"widget","id":1,"name":"x","start_us":0,"dur_us":0}` + "\n",
		"zero id":        `{"type":"span","id":0,"name":"x","start_us":0,"dur_us":0}` + "\n",
		"duplicate id":   `{"type":"span","id":1,"name":"x","start_us":0,"dur_us":0}` + "\n" + `{"type":"span","id":1,"name":"y","start_us":0,"dur_us":0}` + "\n",
		"unknown parent": `{"type":"span","id":1,"parent":99,"name":"x","start_us":0,"dur_us":0}` + "\n",
		"event parent":   `{"type":"event","id":1,"name":"e","start_us":0,"dur_us":0}` + "\n" + `{"type":"span","id":2,"parent":1,"name":"x","start_us":0,"dur_us":0}` + "\n",
	}
	for name, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// errWriter fails after the first write, for sticky-error coverage.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, errors.New("writer broke")
	}
	return len(p), nil
}

func TestTracerStickyError(t *testing.T) {
	w := &errWriter{}
	tr := NewTracer(w, &FixedClock{T: time.Unix(0, 0)})
	tr.Event("a", nil, nil)
	if tr.Err() != nil {
		t.Fatal("first write should succeed")
	}
	tr.Event("b", nil, nil)
	if tr.Err() == nil {
		t.Fatal("second write error not recorded")
	}
	tr.Event("c", nil, nil) // must not clobber or panic
	if w.n != 2 {
		t.Errorf("writes after error = %d, want none", w.n-2)
	}
}
