package obs

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/stats"
)

func TestHistogramBucketing(t *testing.T) {
	h, err := NewHistogram([]float64{1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.5, 1, 1.5, 2, 4.9, 5, 100, math.NaN()} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le semantics: 0.5,1 -> bucket le=1; 1.5,2 -> le=2; 4.9,5 -> le=5;
	// 100 -> +Inf; NaN dropped.
	wantCounts := []uint64{2, 2, 2, 1}
	for i, want := range wantCounts {
		if s.Counts[i] != want {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], want, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if want := 0.5 + 1 + 1.5 + 2 + 4.9 + 5 + 100; math.Abs(s.Sum-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", s.Sum, want)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Error("empty buckets accepted")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Error("non-ascending buckets accepted")
	}
}

// TestHistogramConcurrentObserve hammers one histogram from 8 goroutines
// while a reader snapshots concurrently — the -race exercise for the
// sharded write path. Every observation must land exactly once.
func TestHistogramConcurrentObserve(t *testing.T) {
	h, err := NewHistogram(DefLatencyBuckets())
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		perG    = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				var n uint64
				for _, c := range s.Counts {
					n += c
				}
				// A mid-flight snapshot must still be internally
				// consistent: bucket counts sum to the total count.
				if n != s.Count {
					t.Errorf("snapshot counts sum %d != count %d", n, s.Count)
					return
				}
			}
		}
	}()
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := stats.NewRand(int64(100 + g))
			for i := 0; i < perG; i++ {
				h.Observe(r.Float64())
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	s := h.Snapshot()
	if s.Count != writers*perG {
		t.Errorf("count = %d, want %d", s.Count, writers*perG)
	}
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	if n != s.Count {
		t.Errorf("bucket sum %d != count %d", n, s.Count)
	}
}

// TestHistogramMergeOrderInsensitive mirrors the harvester merge property
// test: merging K per-shard snapshots must agree for every merge order —
// integer counts exactly, float sums to tight tolerance.
func TestHistogramMergeOrderInsensitive(t *testing.T) {
	const shards = 7
	buckets := []float64{0.25, 0.5, 0.75}
	r := stats.NewRand(43)
	snaps := make([]HistSnapshot, shards)
	for i := range snaps {
		h, err := NewHistogram(buckets)
		if err != nil {
			t.Fatal(err)
		}
		n := 50 + r.Intn(200)
		for j := 0; j < n; j++ {
			h.Observe(r.Float64())
		}
		snaps[i] = h.Snapshot()
	}
	mergeInOrder := func(order []int) HistSnapshot {
		acc := snaps[order[0]]
		// Deep-copy the counts so merges do not alias the source snapshot.
		acc.Counts = append([]uint64(nil), acc.Counts...)
		for _, i := range order[1:] {
			if err := acc.Merge(snaps[i]); err != nil {
				t.Fatal(err)
			}
		}
		return acc
	}
	identity := make([]int, shards)
	for i := range identity {
		identity[i] = i
	}
	ref := mergeInOrder(identity)
	if ref.Count == 0 {
		t.Fatal("reference merged nothing")
	}
	shuffler := stats.NewRand(44)
	for trial := 0; trial < 20; trial++ {
		order := append([]int(nil), identity...)
		shuffler.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		got := mergeInOrder(order)
		if got.Count != ref.Count {
			t.Fatalf("order %v: count %d vs %d", order, got.Count, ref.Count)
		}
		for i := range got.Counts {
			if got.Counts[i] != ref.Counts[i] {
				t.Fatalf("order %v: bucket %d: %d vs %d", order, i, got.Counts[i], ref.Counts[i])
			}
		}
		if math.Abs(got.Sum-ref.Sum) > 1e-9*math.Max(math.Abs(ref.Sum), 1) {
			t.Errorf("order %v: sum %v vs %v", order, got.Sum, ref.Sum)
		}
	}

	mismatched, err := NewHistogram([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	mismatched.Observe(1)
	bad := mismatched.Snapshot()
	acc := mergeInOrder(identity)
	if err := acc.Merge(bad); err == nil {
		t.Error("merge across bucket layouts accepted")
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1}, "backend", "0")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{backend="0",le="0.1"} 1`,
		`lat_seconds_bucket{backend="0",le="1"} 2`,
		`lat_seconds_bucket{backend="0",le="+Inf"} 3`,
		`lat_seconds_sum{backend="0"} 3.55`,
		`lat_seconds_count{backend="0"} 3`,
		// Quantile pseudo-families, interpolated from the same snapshot:
		// p50 rank 1.5 lands in (0.1, 1] halfway -> 0.55; p90/p99 land in
		// the +Inf bucket, which reports the last finite bound.
		"# TYPE lat_seconds_p50 gauge",
		`lat_seconds_p50{backend="0"} 0.55`,
		"# TYPE lat_seconds_p90 gauge",
		`lat_seconds_p90{backend="0"} 1`,
		"# TYPE lat_seconds_p99 gauge",
		`lat_seconds_p99{backend="0"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
}

// TestHistogramQuantileMergeInvariance is the satellite property test:
// quantiles computed on K merged per-shard snapshots must equal quantiles
// of one histogram fed the concatenated observation stream. Quantile reads
// only the integer bucket counts, so equality is exact — no tolerance.
func TestHistogramQuantileMergeInvariance(t *testing.T) {
	buckets := DefLatencyBuckets()
	const shards = 5
	r := stats.NewRand(97)
	whole, err := NewHistogram(buckets)
	if err != nil {
		t.Fatal(err)
	}
	var merged HistSnapshot
	for sh := 0; sh < shards; sh++ {
		h, err := NewHistogram(buckets)
		if err != nil {
			t.Fatal(err)
		}
		n := 100 + r.Intn(400)
		for i := 0; i < n; i++ {
			// Mix of fast and tail latencies across several decades.
			v := math.Exp(r.NormFloat64()*2 - 6)
			h.Observe(v)
			whole.Observe(v)
		}
		if sh == 0 {
			merged = h.Snapshot()
		} else if err := merged.Merge(h.Snapshot()); err != nil {
			t.Fatal(err)
		}
	}
	ws := whole.Snapshot()
	if merged.Count != ws.Count {
		t.Fatalf("merged count %d != whole count %d", merged.Count, ws.Count)
	}
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		mq, wq := merged.Quantile(q), ws.Quantile(q)
		if mq != wq {
			t.Errorf("q=%v: merged %v != concatenated %v", q, mq, wq)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, err := NewHistogram([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	// 100 uniform-ish observations, 25 per bucket midpoint.
	for b := 0; b < 4; b++ {
		for i := 0; i < 25; i++ {
			h.Observe(float64(b) + 0.5)
		}
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); math.Abs(q-2) > 0.1 {
		t.Errorf("p50 = %v, want ~2", q)
	}
	if q := s.Quantile(1); q != 4 {
		t.Errorf("p100 = %v, want 4", q)
	}
	empty := HistSnapshot{Buckets: []float64{1}, Counts: []uint64{0, 0}}
	if q := empty.Quantile(0.5); !math.IsNaN(q) {
		t.Errorf("empty quantile = %v, want NaN", q)
	}
}
