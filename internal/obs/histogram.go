package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// histShards is the number of independently locked accumulators inside one
// Histogram. Writers spread over the shards round-robin, so eight
// goroutines hammering Observe rarely contend; readers merge the shards in
// index order, which keeps float summation order fixed.
const histShards = 8

// Histogram is a fixed-bucket latency/size histogram designed like the
// rest of the repository's accumulators: lock-sharded on the write path,
// snapshotted into a mergeable value type on the read path. The bucket
// layout is immutable after construction — merge compatibility across
// shards, processes, and checkpoints depends on it.
type Histogram struct {
	buckets []float64 // ascending upper bounds; +Inf bucket is implicit
	next    atomic.Uint64
	shards  [histShards]histShard
}

type histShard struct {
	mu     sync.Mutex
	counts []uint64 // len(buckets)+1; last slot is the +Inf overflow
	sum    float64
	count  uint64
}

// NewHistogram builds a histogram over the given ascending bucket upper
// bounds. The bounds are copied; at least one is required.
func NewHistogram(buckets []float64) (*Histogram, error) {
	if len(buckets) == 0 {
		return nil, fmt.Errorf("obs: histogram needs at least one bucket")
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			return nil, fmt.Errorf("obs: histogram buckets not ascending at %d: %v <= %v",
				i, buckets[i], buckets[i-1])
		}
	}
	h := &Histogram{buckets: append([]float64(nil), buckets...)}
	for i := range h.shards {
		h.shards[i].counts = make([]uint64, len(buckets)+1)
	}
	return h, nil
}

// DefLatencyBuckets is the default layout for request-latency histograms:
// 100µs to 10s, roughly 1-2.5-5 per decade — wide enough for both the
// microsecond-scale simulated backends and multi-second tail stalls.
func DefLatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// Observe records one value. NaN observations are dropped — one poisoned
// sample must not turn the running sum into NaN forever. Safe for
// concurrent use.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// Smallest bucket whose upper bound is >= v ("le" semantics);
	// len(buckets) selects the +Inf overflow slot.
	b := sort.SearchFloat64s(h.buckets, v)
	sh := &h.shards[h.next.Add(1)%histShards]
	sh.mu.Lock()
	sh.counts[b]++
	sh.sum += v
	sh.count++
	sh.mu.Unlock()
}

// HistSnapshot is a point-in-time, mergeable view of a histogram. Counts
// holds per-bucket (non-cumulative) counts with the +Inf overflow last;
// exposition converts to cumulative "le" counts.
type HistSnapshot struct {
	Buckets []float64
	Counts  []uint64
	Sum     float64
	Count   uint64
}

// Snapshot merges the shards in index order and returns the aggregate.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Buckets: append([]float64(nil), h.buckets...),
		Counts:  make([]uint64, len(h.buckets)+1),
	}
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		for j, c := range sh.counts {
			s.Counts[j] += c
		}
		s.Sum += sh.sum
		s.Count += sh.count
		sh.mu.Unlock()
	}
	return s
}

// Merge folds another snapshot into s — the cross-process reduction, e.g.
// combining per-worker histograms on read. Both snapshots must share the
// bucket layout. Merging an empty snapshot is a no-op.
func (s *HistSnapshot) Merge(o HistSnapshot) error {
	if o.Count == 0 && o.Sum == 0 {
		return nil
	}
	if !sameBuckets(s.Buckets, o.Buckets) {
		return fmt.Errorf("obs: merging histograms with different bucket layouts")
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.Sum += o.Sum
	s.Count += o.Count
	return nil
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts
// by linear interpolation inside the selected bucket. The +Inf bucket
// reports its lower bound — a histogram cannot see past its last edge.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, c := range s.Counts {
		cum += c
		if float64(cum) >= rank && c > 0 {
			if i == len(s.Buckets) { // +Inf bucket
				return s.Buckets[len(s.Buckets)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Buckets[i-1]
			}
			hi := s.Buckets[i]
			frac := (rank - float64(cum-c)) / float64(c)
			return lo + frac*(hi-lo)
		}
	}
	return s.Buckets[len(s.Buckets)-1]
}
