package obs

import (
	"io"
	"net/http"
	"testing"
)

func TestStartDebugDisabled(t *testing.T) {
	s, err := StartDebug("")
	if err != nil {
		t.Fatal(err)
	}
	if s != nil {
		t.Fatal("empty addr should disable the debug server")
	}
	// The disabled server is inert, not a crash.
	if s.Addr() != "" {
		t.Error("disabled server has an address")
	}
	if err := s.Close(); err != nil {
		t.Error(err)
	}
}

func TestDebugServerEndpoints(t *testing.T) {
	s, err := StartDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/vars"} {
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s = %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Errorf("%s: empty body", path)
		}
	}
	// Anything off the debug surface 404s.
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("/metrics on debug server = %d, want 404", resp.StatusCode)
	}
}
