// Package obs is the repository's unified observability layer: a
// stdlib-only metrics registry with deterministic Prometheus-text
// exposition, a structured JSONL span tracer with a pluggable clock, and a
// pprof/expvar debug server helper.
//
// The paper's pitch is that harvested ⟨x, a, r, p⟩ tuples yield trustworthy
// counterfactual estimates — but trust depends on runtime properties a
// serving stack must be able to see: effective sample size, importance
// weight tails, clip rates, queue pressure, per-backend latency. Every
// long-running component (harvestd, lbd, cached, the netlb proxy) and the
// experiment runner report through this package.
//
// Three design rules, mirrored from the rest of the repository:
//
//   - Deterministic output. WritePrometheus renders metric families sorted
//     by name and series sorted by label value, with # HELP/# TYPE lines,
//     so two renders of the same state are byte-identical — scrape diffs
//     and regression tests stay trivial.
//   - Mergeable state. Histograms are lock-sharded for write concurrency
//     and snapshot into a mergeable value type, the same Snapshot/Merge
//     shape as harvester.IncrementalEstimator and harvestd.Accum.
//   - Injected clocks. Nothing here reads time.Now directly except the
//     WallClock constructor (enforced by harvestlint's walltime rule), so
//     simulations can drive the tracer from a des.Simulator virtual clock
//     and tests get byte-stable timestamps.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Registry holds named metric families and renders them as Prometheus
// text. All methods are safe for concurrent use. Instrument handles
// (Counter, Gauge, Histogram) should be looked up once and cached by the
// caller: the lookup takes the registry lock, the handles themselves are
// lock-free (counters/gauges) or lock-sharded (histograms).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one metric name: its metadata plus every label combination
// observed so far.
type family struct {
	name, help, typ string
	buckets         []float64 // histogram families only
	series          map[string]*series
}

// series is one (name, labels) combination. Exactly one of the value
// fields is set, matching the family type.
type series struct {
	labelPairs []string // sorted k1, v1, k2, v2, ...
	counter    *Counter
	gauge      *Gauge
	counterFn  func() int64
	gaugeFn    func() float64
	hist       *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the metric to stay monotone; this is not
// checked — the hot path stays a single atomic add).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by d (compare-and-swap loop).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Counter registers (or looks up) a counter series. Labels are alternating
// key, value strings. Re-registering an existing name with a different
// type or help text panics: metric identity is a program invariant, not a
// runtime condition.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.lookup(name, help, "counter", nil, labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge registers (or looks up) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.lookup(name, help, "gauge", nil, labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// CounterFunc registers a counter series whose value is computed at scrape
// time (for monotone values owned by another subsystem, e.g. cache hit
// totals). fn must be safe to call from the scrape goroutine.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...string) {
	s := r.lookup(name, help, "counter", nil, labels)
	s.counterFn = fn
}

// GaugeFunc registers a gauge series computed at scrape time (queue
// depths, goroutine counts, uptime). fn must be safe to call from the
// scrape goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	s := r.lookup(name, help, "gauge", nil, labels)
	s.gaugeFn = fn
}

// Histogram registers (or looks up) a histogram series. Every series of
// one family shares the first registration's bucket layout; passing a
// different layout for an existing family panics.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	s := r.lookup(name, help, "histogram", buckets, labels)
	if s.hist == nil {
		h, err := NewHistogram(buckets)
		if err != nil {
			panic(fmt.Sprintf("obs: histogram %s: %v", name, err))
		}
		s.hist = h
	}
	return s.hist
}

// lookup finds or creates the series for (name, labels), enforcing that a
// family's type, help, and bucket layout never change after the first
// registration.
func (r *Registry) lookup(name, help, typ string, buckets []float64, labels []string) *series {
	pairs := sortedLabelPairs(labels)
	key := renderLabels(pairs, "")
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		if typ == "histogram" {
			f.buckets = append([]float64(nil), buckets...)
		}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", name, f.typ, typ))
	}
	if f.help != help {
		panic(fmt.Sprintf("obs: metric %s help text mismatch", name))
	}
	if typ == "histogram" && !sameBuckets(f.buckets, buckets) {
		panic(fmt.Sprintf("obs: histogram %s bucket layout mismatch", name))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labelPairs: pairs}
		f.series[key] = s
	}
	return s
}

// sortedLabelPairs validates alternating key/value labels and returns them
// sorted by key. Odd counts and duplicate keys panic: labels are written
// at instrumentation sites, so a bad set is a bug, not input.
func sortedLabelPairs(labels []string) []string {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	n := len(labels) / 2
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return labels[2*idx[a]] < labels[2*idx[b]] })
	out := make([]string, 0, len(labels))
	for i, ix := range idx {
		if i > 0 && labels[2*ix] == out[len(out)-2] {
			panic(fmt.Sprintf("obs: duplicate label key %q", labels[2*ix]))
		}
		out = append(out, labels[2*ix], labels[2*ix+1])
	}
	return out
}

// renderLabels renders sorted pairs as {k="v",...}, appending the optional
// extra pair (histogram "le") last. Empty pairs and extra render as "".
func renderLabels(pairs []string, extra string) string {
	if len(pairs) == 0 && extra == "" {
		return ""
	}
	// strings.Builder writes cannot fail; discards are explicit for errdrop.
	var b strings.Builder
	_ = b.WriteByte('{')
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			_ = b.WriteByte(',')
		}
		_, _ = b.WriteString(pairs[i])
		_, _ = b.WriteString(`="`)
		_, _ = b.WriteString(escapeLabel(pairs[i+1]))
		_ = b.WriteByte('"')
	}
	if extra != "" {
		if len(pairs) > 0 {
			_ = b.WriteByte(',')
		}
		_, _ = b.WriteString(`le="`)
		_, _ = b.WriteString(extra)
		_ = b.WriteByte('"')
	}
	_ = b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes HELP text per the Prometheus text format: backslash
// and newline. (Double quotes are legal in HELP text and stay literal.)
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

func sameBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// formatFloat renders a float the way the rest of the exposition does.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// histQuantiles are the quantile pseudo-families every histogram family
// exposes alongside its buckets.
var histQuantiles = []struct {
	suffix string
	q      float64
}{
	{"p50", 0.5},
	{"p90", 0.9},
	{"p99", 0.99},
}

// WritePrometheus renders every family in the Prometheus text format,
// deterministically: families sorted by name, series sorted by label
// string, one # HELP and # TYPE line per family. Scrape-time functions
// (GaugeFunc/CounterFunc) are evaluated during the render.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		r.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sers := make([]*series, len(keys))
		for i, k := range keys {
			sers[i] = f.series[k]
		}
		r.mu.Unlock()

		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		snaps := make([]*HistSnapshot, len(sers))
		for si, s := range sers {
			ls := renderLabels(s.labelPairs, "")
			switch {
			case s.counter != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, ls, s.counter.Value())
			case s.counterFn != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, ls, s.counterFn())
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, ls, formatFloat(s.gauge.Value()))
			case s.gaugeFn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, ls, formatFloat(s.gaugeFn()))
			case s.hist != nil:
				snap := s.hist.Snapshot()
				snaps[si] = &snap
				cum := uint64(0)
				for i, ub := range snap.Buckets {
					cum += snap.Counts[i]
					fmt.Fprintf(&b, "%s_bucket%s %d\n",
						f.name, renderLabels(s.labelPairs, formatFloat(ub)), cum)
				}
				cum += snap.Counts[len(snap.Buckets)]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, renderLabels(s.labelPairs, "+Inf"), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, ls, formatFloat(snap.Sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, ls, cum)
			}
		}
		// Histogram families additionally expose linearly interpolated
		// quantile gauges derived from the same snapshot the buckets were
		// rendered from, as sibling pseudo-families right after the family
		// (deterministic placement; empty series render NaN).
		if f.typ == "histogram" {
			for _, pq := range histQuantiles {
				fmt.Fprintf(&b, "# HELP %s_%s %s quantile of %s (interpolated)\n",
					f.name, pq.suffix, pq.suffix, f.name)
				fmt.Fprintf(&b, "# TYPE %s_%s gauge\n", f.name, pq.suffix)
				for si, s := range sers {
					if snaps[si] == nil {
						continue
					}
					fmt.Fprintf(&b, "%s_%s%s %s\n", f.name, pq.suffix,
						renderLabels(s.labelPairs, ""), formatFloat(snaps[si].Quantile(pq.q)))
				}
			}
		}
	}
	_, err := w.Write([]byte(b.String()))
	return err
}

// Handler returns an http.Handler serving the registry as /metrics text.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// RegisterGoRuntime adds the standard Go runtime gauges every daemon in
// this repository exposes (goroutines, heap, GC).
func RegisterGoRuntime(r *Registry) {
	r.GaugeFunc("go_goroutines", "number of live goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("go_heap_alloc_bytes", "bytes of allocated heap objects", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	r.CounterFunc("go_total_alloc_bytes", "cumulative bytes allocated on the heap", func() int64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return int64(ms.TotalAlloc)
	})
	r.CounterFunc("go_gc_runs_total", "completed GC cycles", func() int64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return int64(ms.NumGC)
	})
}
