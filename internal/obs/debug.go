package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugMux returns a fresh mux serving the standard Go debug surface:
// /debug/pprof/ (profiles, heap, goroutine dumps) and /debug/vars
// (expvar). The daemons mount this on a separate listener behind a
// -debug-addr flag, off by default, so the production API surface never
// grows profiling endpoints by accident.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// HTTPServer is a minimal owned listener + server pair for auxiliary
// endpoints (debug surface, standalone /metrics).
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeMux listens on addr and serves handler until Close. addr ""
// returns (nil, nil): the nil *HTTPServer is a valid disabled server, so
// flag-gated call sites need no branching.
func ServeMux(addr string, handler http.Handler) (*HTTPServer, error) {
	if addr == "" {
		return nil, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &HTTPServer{ln: ln, srv: &http.Server{Handler: handler}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// StartDebug serves DebugMux on addr ("" = disabled, returns (nil, nil)).
func StartDebug(addr string) (*HTTPServer, error) {
	return ServeMux(addr, DebugMux())
}

// MetricsMux returns a fresh mux serving the registry at /metrics — the
// standalone scrape surface for daemons without an API server of their own.
func MetricsMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	return mux
}

// Addr returns the bound host:port ("" for a disabled server).
func (s *HTTPServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the listener down. Closing a disabled (nil) server is a
// no-op.
func (s *HTTPServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
