package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta_total", "a counter").Add(3)
	r.Gauge("alpha_depth", "a gauge").Set(2.5)
	r.Counter("mid_total", "labelled", "backend", "1").Inc()
	r.Counter("mid_total", "labelled", "backend", "0").Add(2)
	r.GaugeFunc("fn_value", "computed at scrape", func() float64 { return 7 })
	r.CounterFunc("fn_total", "computed counter", func() int64 { return 9 })

	got := render(t, r)
	want := strings.Join([]string{
		"# HELP alpha_depth a gauge",
		"# TYPE alpha_depth gauge",
		"alpha_depth 2.5",
		"# HELP fn_total computed counter",
		"# TYPE fn_total counter",
		"fn_total 9",
		"# HELP fn_value computed at scrape",
		"# TYPE fn_value gauge",
		"fn_value 7",
		"# HELP mid_total labelled",
		"# TYPE mid_total counter",
		`mid_total{backend="0"} 2`,
		`mid_total{backend="1"} 1`,
		"# HELP zeta_total a counter",
		"# TYPE zeta_total counter",
		"zeta_total 3",
		"",
	}, "\n")
	if got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Determinism: two renders of unchanged state are byte-identical.
	if again := render(t, r); again != got {
		t.Errorf("renders differ:\n%s\nvs\n%s", got, again)
	}
}

func TestRegistryLabelHandling(t *testing.T) {
	r := NewRegistry()
	// Same series regardless of label order in the call.
	a := r.Counter("x_total", "h", "b", "2", "a", "1")
	b := r.Counter("x_total", "h", "a", "1", "b", "2")
	if a != b {
		t.Error("label order created distinct series")
	}
	a.Inc()
	got := render(t, r)
	if !strings.Contains(got, `x_total{a="1",b="2"} 1`) {
		t.Errorf("labels not sorted by key:\n%s", got)
	}

	// Escaping.
	r.Counter("esc_total", "h", "k", "a\"b\\c\nd").Inc()
	got = render(t, r)
	if !strings.Contains(got, `esc_total{k="a\"b\\c\nd"} 1`) {
		t.Errorf("label escaping wrong:\n%s", got)
	}
}

// TestHelpEscaping pins the Prometheus-text escaping rules for HELP text:
// backslashes and newlines must be escaped (a raw newline would split the
// comment line and corrupt the exposition), while double quotes are legal
// and stay literal.
func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("hostile_total", "path C:\\tmp\nsecond \"line\"").Inc()
	got := render(t, r)
	want := `# HELP hostile_total path C:\\tmp\nsecond "line"` + "\n"
	if !strings.Contains(got, want) {
		t.Errorf("HELP escaping wrong:\ngot:\n%s\nwant line:\n%s", got, want)
	}
	// The exposition must not contain a raw mid-comment newline: every
	// line starts with a comment marker or the metric name.
	for _, line := range strings.Split(strings.TrimSuffix(got, "\n"), "\n") {
		if !strings.HasPrefix(line, "# ") && !strings.HasPrefix(line, "hostile_total") {
			t.Errorf("stray exposition line %q", line)
		}
	}
}

func TestRegistryMisusePanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"type change", func(r *Registry) {
			r.Counter("m", "h")
			r.Gauge("m", "h")
		}},
		{"help change", func(r *Registry) {
			r.Counter("m", "h1")
			r.Counter("m", "h2")
		}},
		{"odd labels", func(r *Registry) { r.Counter("m", "h", "k") }},
		{"dup label key", func(r *Registry) { r.Counter("m", "h", "k", "1", "k", "2") }},
		{"bucket mismatch", func(r *Registry) {
			r.Histogram("m", "h", []float64{1, 2})
			r.Histogram("m", "h", []float64{1, 3})
		}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			c.fn(NewRegistry())
		}()
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "h").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	buf := make([]byte, 1024)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "h_total 1") {
		t.Errorf("body %q", buf[:n])
	}
}

func TestRegisterGoRuntime(t *testing.T) {
	r := NewRegistry()
	RegisterGoRuntime(r)
	got := render(t, r)
	for _, want := range []string{
		"# TYPE go_goroutines gauge",
		"# TYPE go_heap_alloc_bytes gauge",
		"# TYPE go_total_alloc_bytes counter",
		"# TYPE go_gc_runs_total counter",
		"go_goroutines ",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
}

func TestGaugeAddConcurrent(t *testing.T) {
	var g Gauge
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				g.Add(1)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if v := g.Value(); v != 4000 {
		t.Errorf("gauge = %v, want 4000", v)
	}
}
