package obs

import (
	"sync"
	"time"

	"repro/internal/des"
)

// Clock abstracts "what time is it" so the tracer (and any timestamped
// telemetry) can run on the host wall clock in daemons and on a virtual
// clock in simulations. harvestlint's walltime rule pins the boundary:
// inside this package only the WallClock constructor may read time.Now —
// everything else takes an injected Clock.
type Clock interface {
	// Now returns the current time. Implementations need not be safe for
	// concurrent use unless documented (WallClock is; SimClock is not).
	Now() time.Time
}

// WallClock returns the host wall clock. It is the one sanctioned
// time.Now call site in this package and is safe for concurrent use.
func WallClock() Clock { return wallClock{} }

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// SimClock adapts a des.Simulator's virtual clock: virtual time t seconds
// maps to Epoch + t. Like the simulator itself it is single-goroutine —
// spans traced against a SimClock must be created and ended on the
// simulation goroutine.
type SimClock struct {
	Sim *des.Simulator
	// Epoch anchors virtual time zero; the zero value means the Unix epoch,
	// so start_us in traces equals virtual microseconds directly.
	Epoch time.Time
}

// Now implements Clock.
func (c SimClock) Now() time.Time {
	base := c.Epoch
	if base.IsZero() {
		base = time.Unix(0, 0).UTC()
	}
	return base.Add(time.Duration(c.Sim.Now() * float64(time.Second)))
}

// FixedClock is a manually advanced clock for tests that need
// byte-identical timestamps across renders. Safe for concurrent use: a
// test goroutine may Advance while a daemon under test reads Now (e.g.
// from an HTTP handler).
type FixedClock struct {
	T time.Time

	mu sync.Mutex
}

// Now implements Clock.
func (c *FixedClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.T
}

// Advance moves the clock forward by d.
func (c *FixedClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.T = c.T.Add(d)
}
