package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer emits structured spans and events as JSONL: one self-contained
// JSON object per line, written when the span ends, so a trace file is
// greppable, tail-able, and needs no reader state. The clock is injected —
// daemons trace wall time, simulations trace virtual time — which is what
// makes "total traced duration equals simulated duration" testable at all.
//
// A nil *Tracer is a valid no-op tracer: Start returns a nil *Span, and
// nil spans accept End/SetAttr/ID calls. Call sites therefore never guard
// on "is tracing enabled".
type Tracer struct {
	clock Clock
	next  atomic.Uint64

	mu  sync.Mutex // serializes writes; one record is one line
	w   io.Writer
	err error // first write/encode error, sticky
}

// NewTracer writes JSONL trace records to w, timestamping with clock
// (nil selects the wall clock). The caller owns w's lifecycle.
func NewTracer(w io.Writer, clock Clock) *Tracer {
	if clock == nil {
		clock = WallClock()
	}
	return &Tracer{clock: clock, w: w}
}

// Record is one line of a trace file.
type Record struct {
	// Type is "span" (has a duration) or "event" (instantaneous).
	Type string `json:"type"`
	// ID is unique within the trace; Parent is the enclosing span's ID, 0
	// for roots. Spans are written when they end, so a parent's record
	// appears after its children's.
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	// StartUS is the clock's microseconds since the Unix epoch (for
	// SimClock with a zero Epoch: virtual microseconds).
	StartUS int64 `json:"start_us"`
	// DurUS is the span's duration in microseconds; 0 for events.
	DurUS int64          `json:"dur_us"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Span is one in-flight traced operation. A span belongs to the goroutine
// that started it: SetAttr and End are not synchronized.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  map[string]any
	ended  bool
}

// Start opens a span. parent may be nil (a root span). attrs may be nil;
// the map is retained until End, so the caller must not mutate it after
// handing it over unless through SetAttr.
func (t *Tracer) Start(name string, parent *Span, attrs map[string]any) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, id: t.next.Add(1), name: name, start: t.clock.Now(), attrs: attrs}
	if parent != nil {
		s.parent = parent.id
	}
	return s
}

// ID returns the span's trace-unique ID (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttr attaches one attribute, overwriting any same-keyed value.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = value
}

// End closes the span and writes its record. Ending a span twice writes
// once; ending a nil span is a no-op.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	end := s.tr.clock.Now()
	s.tr.write(Record{
		Type:    "span",
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartUS: s.start.UnixMicro(),
		DurUS:   end.Sub(s.start).Microseconds(),
		Attrs:   s.attrs,
	})
}

// Event writes an instantaneous record (queue stall markers, checkpoint
// ticks) under the given parent span (nil for a root event).
func (t *Tracer) Event(name string, parent *Span, attrs map[string]any) {
	if t == nil {
		return
	}
	r := Record{
		Type:    "event",
		ID:      t.next.Add(1),
		Name:    name,
		StartUS: t.clock.Now().UnixMicro(),
		Attrs:   attrs,
	}
	if parent != nil {
		r.Parent = parent.id
	}
	t.write(r)
}

// Err returns the first write error the tracer has hit, if any. Tracing is
// advisory — call sites keep running — but tests and shutdown paths should
// surface a broken trace file.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

func (t *Tracer) write(r Record) {
	line, err := json.Marshal(r) // map keys marshal sorted: deterministic lines
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(append(line, '\n')); err != nil {
		t.err = err
	}
}

// ReadTrace parses a JSONL trace, validating structural invariants: every
// line is a well-formed record, IDs are unique, and every non-zero parent
// references a span ID present in the trace. (Parents legitimately appear
// after their children — spans are written on End.)
func ReadTrace(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	var recs []Record
	seen := make(map[uint64]bool)
	spanIDs := make(map[uint64]bool)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", lineNo, err)
		}
		if rec.Type != "span" && rec.Type != "event" {
			return nil, fmt.Errorf("obs: trace line %d: unknown record type %q", lineNo, rec.Type)
		}
		if rec.ID == 0 {
			return nil, fmt.Errorf("obs: trace line %d: record without id", lineNo)
		}
		if seen[rec.ID] {
			return nil, fmt.Errorf("obs: trace line %d: duplicate id %d", lineNo, rec.ID)
		}
		seen[rec.ID] = true
		if rec.Type == "span" {
			spanIDs[rec.ID] = true
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	for _, rec := range recs {
		if rec.Parent != 0 && !spanIDs[rec.Parent] {
			return nil, fmt.Errorf("obs: record %d (%s) has unknown parent %d", rec.ID, rec.Name, rec.Parent)
		}
	}
	return recs, nil
}
