package chaos

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/lbsim"
	"repro/internal/ope"
)

func TestScheduleValidate(t *testing.T) {
	good := Schedule{{Server: 0, Start: 10, End: 20}}
	if err := good.Validate(2, 100); err != nil {
		t.Fatal(err)
	}
	cases := map[string]Schedule{
		"bad server":      {{Server: 5, Start: 0, End: 10}},
		"negative start":  {{Server: 0, Start: -1, End: 10}},
		"empty window":    {{Server: 0, Start: 10, End: 10}},
		"past horizon":    {{Server: 0, Start: 200, End: 210}},
		"inverted window": {{Server: 0, Start: 20, End: 10}},
	}
	for name, s := range cases {
		if err := s.Validate(2, 100); err == nil {
			t.Errorf("%s should fail", name)
		}
	}
}

func TestDown(t *testing.T) {
	s := Schedule{{Server: 1, Start: 5, End: 10}}
	if d := s.Down(4, 3); d[1] {
		t.Error("server up before outage")
	}
	if d := s.Down(5, 3); !d[1] || d[0] || d[2] {
		t.Errorf("down flags wrong: %v", d)
	}
	if d := s.Down(10, 3); d[1] {
		t.Error("server up at End (half-open)")
	}
}

func TestRandomSchedule(t *testing.T) {
	s := RandomSchedule(1, 4, 1000, 10, 50)
	if len(s) != 10 {
		t.Fatalf("len = %d", len(s))
	}
	if err := s.Validate(4, 1000); err != nil {
		t.Fatal(err)
	}
	for _, o := range s {
		if o.End-o.Start != 50 {
			t.Errorf("duration = %d", o.End-o.Start)
		}
	}
}

func TestCollectPropensities(t *testing.T) {
	cfg := lbsim.TwoServerFig5()
	sched := Schedule{{Server: 1, Start: 100, End: 200}}
	ds, err := Collect(cfg, sched, 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 500 {
		t.Fatalf("len = %d", len(ds))
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range ds {
		d := &ds[i]
		t0 := int(d.Seq)
		inOutage := t0 >= 100 && t0 < 200
		if inOutage {
			if d.Propensity != 1 {
				t.Fatalf("t=%d: propensity %v, want 1 (single healthy server)", t0, d.Propensity)
			}
			if d.Action != 0 {
				t.Fatalf("t=%d: routed to down server", t0)
			}
		} else if d.Propensity != 0.5 {
			t.Fatalf("t=%d: propensity %v, want 0.5", t0, d.Propensity)
		}
	}
}

func TestCollectAllDown(t *testing.T) {
	cfg := lbsim.TwoServerFig5()
	sched := Schedule{
		{Server: 0, Start: 10, End: 20},
		{Server: 1, Start: 10, End: 20},
	}
	if _, err := Collect(cfg, sched, 100, 3); err == nil {
		t.Error("all-down window should fail")
	}
}

func TestCollectValidation(t *testing.T) {
	cfg := lbsim.TwoServerFig5()
	if _, err := Collect(cfg, nil, 0, 1); err == nil {
		t.Error("n=0 should fail")
	}
	bad := cfg
	bad.ArrivalRate = 0
	if _, err := Collect(bad, nil, 10, 1); err == nil {
		t.Error("invalid config should fail")
	}
	if _, err := Collect(cfg, Schedule{{Server: 9, Start: 0, End: 5}}, 10, 1); err == nil {
		t.Error("invalid schedule should fail")
	}
}

func TestChaosExtendsRunCoverage(t *testing.T) {
	// The §5 claim: with chaos, long same-action runs appear (all traffic
	// on the survivor), giving trajectory estimators data they otherwise
	// never see.
	cfg := lbsim.TwoServerFig5()
	plain, err := Collect(cfg, nil, 5000, 4)
	if err != nil {
		t.Fatal(err)
	}
	sched := RandomSchedule(5, 2, 5000, 8, 150)
	chaotic, err := Collect(cfg, sched, 5000, 4)
	if err != nil {
		t.Fatal(err)
	}
	covPlain, err := MeasureCoverage(plain, 20)
	if err != nil {
		t.Fatal(err)
	}
	covChaos, err := MeasureCoverage(chaotic, 20)
	if err != nil {
		t.Fatal(err)
	}
	if covPlain.LongestRun >= 20 {
		t.Errorf("uniform random produced a %d-run; the premise fails", covPlain.LongestRun)
	}
	if covChaos.LongestRun < 100 {
		t.Errorf("chaos longest run = %d, want ≥ outage length scale", covChaos.LongestRun)
	}
	if covChaos.RunsAtLeast[20] <= covPlain.RunsAtLeast[20] {
		t.Errorf("chaos should create more ≥20 runs: %d vs %d",
			covChaos.RunsAtLeast[20], covPlain.RunsAtLeast[20])
	}
	if covChaos.ActionShareMax != 1 {
		t.Errorf("chaos max window share = %v, want 1 (single-action window)", covChaos.ActionShareMax)
	}
}

func TestChaosEnablesSendTo1Evaluation(t *testing.T) {
	// With outage data, the send-to-1 policy gets matched over long
	// stretches, so its (overload-inflated) latency becomes visible to
	// plain IPS — directly fixing Table 2's blind spot.
	cfg := lbsim.TwoServerFig5()
	plain, err := Collect(cfg, nil, 8000, 6)
	if err != nil {
		t.Fatal(err)
	}
	sched := Schedule{{Server: 1, Start: 2000, End: 6000}}
	chaotic, err := Collect(cfg, sched, 8000, 6)
	if err != nil {
		t.Fatal(err)
	}
	sendTo1 := core.PolicyFunc(func(*core.Context) core.Action { return 0 })
	estPlain, err := (ope.IPS{}).Estimate(sendTo1, plain)
	if err != nil {
		t.Fatal(err)
	}
	estChaos, err := (ope.IPS{}).Estimate(sendTo1, chaotic)
	if err != nil {
		t.Fatal(err)
	}
	// The chaotic estimate includes overloaded-server-1 periods, so it
	// should be distinctly higher (worse) than the plain estimate.
	if estChaos.Value <= estPlain.Value*1.2 {
		t.Errorf("chaos estimate %v should exceed plain %v by ≥20%%", estChaos.Value, estPlain.Value)
	}
}

func TestMeasureCoverageBasics(t *testing.T) {
	if _, err := MeasureCoverage(nil, 10); !errors.Is(err, core.ErrNoData) {
		t.Error("empty should fail")
	}
	ds := core.Dataset{
		{Action: 0, Seq: 0}, {Action: 0, Seq: 1}, {Action: 0, Seq: 2},
		{Action: 1, Seq: 3}, {Action: 0, Seq: 4},
	}
	cov, err := MeasureCoverage(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cov.LongestRun != 3 {
		t.Errorf("LongestRun = %d, want 3", cov.LongestRun)
	}
	// Runs: [0,0,0], [1], [0] → runs ≥1: 3, runs ≥2: 1, runs ≥3: 1.
	if cov.RunsAtLeast[1] != 3 || cov.RunsAtLeast[2] != 1 || cov.RunsAtLeast[3] != 1 {
		t.Errorf("RunsAtLeast = %v", cov.RunsAtLeast[:4])
	}
	if cov.ActionShareMax != 1 {
		t.Errorf("window share = %v, want 1 (window [0,0])", cov.ActionShareMax)
	}
}

func TestMeasureCoverageSortsBySeq(t *testing.T) {
	// Same actions, scrambled order: coverage must honor Seq.
	ds := core.Dataset{
		{Action: 1, Seq: 3},
		{Action: 0, Seq: 0},
		{Action: 0, Seq: 2},
		{Action: 0, Seq: 1},
	}
	cov, err := MeasureCoverage(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cov.LongestRun != 3 {
		t.Errorf("LongestRun = %d, want 3 after Seq sort", cov.LongestRun)
	}
}
