// Package chaos implements the §5 "exploration coverage" idea from
// "Harvesting Randomness to Optimize Distributed Systems" (HotNets 2017):
// randomized reliability testing (à la Netflix's Chaos Monkey) triggers
// uneven traffic and extreme conditions that per-request randomization
// never produces — "a uniform random load balancing policy will almost
// never choose the same server twenty times in a row", so data needed to
// evaluate long-horizon policies (like send-to-1) simply doesn't exist in
// ordinary logs.
//
// The package injects server outages into a routed request stream (the
// system's failover response concentrates traffic on the survivors),
// harvests the resulting exploration data with exact propensities, and
// quantifies how much broader the coverage of action *sequences* becomes.
package chaos

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/lbsim"
	"repro/internal/stats"
)

// Outage marks a server down during [Start, End) in request-index time.
type Outage struct {
	Server     int
	Start, End int
}

// Schedule is a set of outages.
type Schedule []Outage

// Validate checks the schedule against a server count and horizon.
func (s Schedule) Validate(numServers, horizon int) error {
	for i, o := range s {
		if o.Server < 0 || o.Server >= numServers {
			return fmt.Errorf("chaos: outage %d targets server %d of %d", i, o.Server, numServers)
		}
		if o.Start < 0 || o.End <= o.Start || o.Start >= horizon {
			return fmt.Errorf("chaos: outage %d window [%d,%d) invalid for horizon %d", i, o.Start, o.End, horizon)
		}
	}
	return nil
}

// Down reports which servers are down at request index t.
func (s Schedule) Down(t int, numServers int) []bool {
	down := make([]bool, numServers)
	for _, o := range s {
		if t >= o.Start && t < o.End {
			down[o.Server] = true
		}
	}
	return down
}

// RandomSchedule draws staggered outages: the horizon is divided into
// count slots and each slot hosts one outage of the given duration on a
// random server. Staggering guarantees outages never overlap in time, so
// at least one server is always healthy (durations are clamped to the slot
// width).
func RandomSchedule(seed int64, numServers, horizon, count, duration int) Schedule {
	r := stats.NewRand(seed)
	s := make(Schedule, 0, count)
	slot := horizon / count
	if slot < 2 {
		slot = 2
	}
	for i := 0; i < count; i++ {
		base := i * slot
		if base >= horizon-1 {
			break
		}
		d := duration
		if d >= slot {
			d = slot - 1
		}
		maxStart := base + slot - d
		if maxStart > horizon-d {
			maxStart = horizon - d
		}
		start := base
		if maxStart > base {
			start = base + r.Intn(maxStart-base)
		}
		s = append(s, Outage{
			Server: r.Intn(numServers),
			Start:  start,
			End:    start + d,
		})
	}
	return s
}

// Collect routes n requests through a uniform-random-over-healthy policy
// under the outage schedule, harvesting ⟨x, a, r, p⟩ with exact
// propensities (1/#healthy). Latencies follow the lbsim linear model with
// connections decayed per request (a lightweight open-loop approximation —
// coverage, not queueing fidelity, is the object here).
func Collect(cfg lbsim.Config, sched Schedule, n int, seed int64) (core.Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k := len(cfg.Servers)
	if err := sched.Validate(k, n); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("chaos: n=%d", n)
	}
	r := stats.NewRand(seed)
	conns := make([]float64, k)
	connsInt := make([]int, k)
	ds := make(core.Dataset, 0, n)
	// Per-request service drain: with arrival rate λ and mean latency T,
	// a request's connection slot persists ~T·λ request slots; approximate
	// with exponential decay per step.
	decay := 1 - 1/(cfg.ArrivalRate*0.5)
	if decay < 0 {
		decay = 0
	}
	for t := 0; t < n; t++ {
		down := sched.Down(t, k)
		healthy := 0
		for _, d := range down {
			if !d {
				healthy++
			}
		}
		if healthy == 0 {
			return nil, fmt.Errorf("chaos: all servers down at t=%d", t)
		}
		// Uniform over healthy servers (failover-aware randomization).
		pick := r.Intn(healthy)
		a := -1
		for s := 0; s < k; s++ {
			if down[s] {
				continue
			}
			if pick == 0 {
				a = s
				break
			}
			pick--
		}
		for s := 0; s < k; s++ {
			connsInt[s] = int(conns[s])
		}
		ctx := lbsim.BuildContext(connsInt, 0, 1)
		lat := cfg.Servers[a].Base + cfg.Servers[a].Slope*conns[a]
		ds = append(ds, core.Datapoint{
			Context:    ctx,
			Action:     core.Action(a),
			Reward:     lat,
			Propensity: 1 / float64(healthy),
			Seq:        int64(t),
		})
		conns[a]++
		for s := 0; s < k; s++ {
			conns[s] *= decay
		}
	}
	return ds, nil
}

// Coverage quantifies how well a dataset explores action sequences.
type Coverage struct {
	// LongestRun is the longest run of consecutive identical actions.
	LongestRun int
	// RunsAtLeast[k] counts runs of length ≥ k for k in 1..MaxTracked.
	RunsAtLeast []int
	// ActionShareMax is the largest share any single action achieved in a
	// sliding window of WindowSize (1.0 = some window was single-action).
	ActionShareMax float64
	WindowSize     int
}

// MaxTrackedRun bounds the RunsAtLeast histogram.
const MaxTrackedRun = 32

// MeasureCoverage computes sequence-coverage statistics over a dataset in
// Seq order.
func MeasureCoverage(ds core.Dataset, windowSize int) (Coverage, error) {
	if len(ds) == 0 {
		return Coverage{}, core.ErrNoData
	}
	if windowSize <= 0 {
		windowSize = 20
	}
	sorted := make(core.Dataset, len(ds))
	copy(sorted, ds)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })

	cov := Coverage{RunsAtLeast: make([]int, MaxTrackedRun+1), WindowSize: windowSize}
	run := 0
	var prev core.Action = -1
	flush := func() {
		if run == 0 {
			return
		}
		if run > cov.LongestRun {
			cov.LongestRun = run
		}
		top := run
		if top > MaxTrackedRun {
			top = MaxTrackedRun
		}
		for k := 1; k <= top; k++ {
			cov.RunsAtLeast[k]++
		}
	}
	for i := range sorted {
		a := sorted[i].Action
		if a == prev {
			run++
		} else {
			flush()
			run = 1
			prev = a
		}
	}
	flush()

	// Sliding-window max action share.
	if len(sorted) >= windowSize {
		counts := map[core.Action]int{}
		for i := range sorted {
			counts[sorted[i].Action]++
			if i >= windowSize {
				old := sorted[i-windowSize].Action
				counts[old]--
			}
			if i >= windowSize-1 {
				for _, c := range counts {
					share := float64(c) / float64(windowSize)
					if share > cov.ActionShareMax {
						cov.ActionShareMax = share
					}
				}
			}
		}
	}
	return cov, nil
}
