package netlb

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/stats"
)

// newCluster brings up two backends (backend 1 slower) and a proxy with
// the given policy, all cleaned up with the test.
func newCluster(t *testing.T, pol core.Policy, logW io.Writer) (*Proxy, []*Backend) {
	t.Helper()
	b0, err := StartBackend(0, 2*time.Millisecond, 500*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b0.Close() })
	b1, err := StartBackend(1, 5*time.Millisecond, 500*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b1.Close() })
	p, err := NewProxy([]string{b0.Addr(), b1.Addr()}, pol, stats.NewRand(1), logW)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, []*Backend{b0, b1}
}

func TestBackendServesAndTracksInflight(t *testing.T) {
	b, err := StartBackend(7, 5*time.Millisecond, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	resp, err := http.Get(b.URL() + "/hello")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Backend") != "7" {
		t.Errorf("X-Backend = %q", resp.Header.Get("X-Backend"))
	}
	if !strings.Contains(string(body), "backend 7") {
		t.Errorf("body = %q", body)
	}
	if b.Served() != 1 {
		t.Errorf("Served = %d", b.Served())
	}
	if b.Inflight() != 0 {
		t.Errorf("Inflight after completion = %d", b.Inflight())
	}
}

func TestBackendConcurrencySlowsService(t *testing.T) {
	b, err := StartBackend(0, 5*time.Millisecond, 3*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// One request alone ≈ 5ms; 8 concurrent requests should average
	// noticeably slower because each sees inflight > 1.
	solo := timeGet(t, b.URL())
	var wg sync.WaitGroup
	durations := make([]time.Duration, 8)
	for i := range durations {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			durations[i] = timeGet(t, b.URL())
		}(i)
	}
	wg.Wait()
	var sum time.Duration
	for _, d := range durations {
		sum += d
	}
	mean := sum / 8
	if mean < solo+2*time.Millisecond {
		t.Errorf("concurrent mean %v should exceed solo %v by ≥2ms", mean, solo)
	}
}

func timeGet(t *testing.T, url string) time.Duration {
	t.Helper()
	start := time.Now()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return time.Since(start)
}

func TestStartBackendValidation(t *testing.T) {
	if _, err := StartBackend(0, 0, time.Millisecond); err == nil {
		t.Error("zero base should fail")
	}
	if _, err := StartBackend(0, time.Millisecond, -time.Millisecond); err == nil {
		t.Error("negative slope should fail")
	}
}

func TestNewProxyValidation(t *testing.T) {
	if _, err := NewProxy([]string{"one"}, policy.Constant{A: 0}, stats.NewRand(1), nil); err == nil {
		t.Error("single upstream should fail")
	}
	if _, err := NewProxy([]string{"a", "b"}, nil, stats.NewRand(1), nil); err == nil {
		t.Error("nil policy should fail")
	}
	// nil rand is tolerated (seeded internally).
	if _, err := NewProxy([]string{"a", "b"}, policy.Constant{A: 0}, nil, nil); err != nil {
		t.Errorf("nil rand should be fine: %v", err)
	}
}

func TestProxyRoutesAndLogs(t *testing.T) {
	var logBuf bytes.Buffer
	p, backends := newCluster(t, policy.UniformRandom{R: stats.NewRand(2)}, &logBuf)
	const n = 40
	for i := 0; i < n; i++ {
		resp, err := http.Get(p.URL() + "/test")
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	total := backends[0].Served() + backends[1].Served()
	if total != n {
		t.Errorf("backends served %d, want %d", total, n)
	}
	if backends[0].Served() == 0 || backends[1].Served() == 0 {
		t.Errorf("random routing should hit both backends: %d/%d",
			backends[0].Served(), backends[1].Served())
	}
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != n {
		t.Fatalf("access log has %d lines, want %d", len(lines), n)
	}
	for _, line := range lines {
		for _, want := range []string{"GET /test", "rt=", "upstream=", "conns=", "prop=0.5"} {
			if !strings.Contains(line, want) {
				t.Errorf("log line missing %q: %s", want, line)
			}
		}
	}
}

func TestProxyDeterministicPolicy(t *testing.T) {
	var logBuf bytes.Buffer
	p, backends := newCluster(t, policy.Constant{A: 1}, &logBuf)
	for i := 0; i < 10; i++ {
		resp, err := http.Get(p.URL() + "/x")
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if backends[1].Served() != 10 || backends[0].Served() != 0 {
		t.Errorf("constant policy split %d/%d", backends[0].Served(), backends[1].Served())
	}
	if !strings.Contains(logBuf.String(), "prop=1.0") {
		t.Error("deterministic policy should log propensity 1")
	}
	if !strings.Contains(logBuf.String(), "upstream=1") {
		t.Error("log should name upstream 1")
	}
}

func TestProxyConnsReturnToZero(t *testing.T) {
	p, _ := newCluster(t, policy.UniformRandom{R: stats.NewRand(3)}, nil)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(p.URL() + "/y")
			if err != nil {
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
	}
	wg.Wait()
	for i, c := range p.Conns() {
		if c != 0 {
			t.Errorf("upstream %d conns = %d after drain", i, c)
		}
	}
}

func TestProxyBadUpstream(t *testing.T) {
	// Route to a dead upstream: proxy must answer 502, not hang.
	p, err := NewProxy([]string{"127.0.0.1:1", "127.0.0.1:1"}, policy.Constant{A: 0}, stats.NewRand(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	resp, err := http.Get(p.URL() + "/z")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status = %d, want 502", resp.StatusCode)
	}
}

func TestLeastLoadedViaProxy(t *testing.T) {
	// lbsim.LeastLoaded reads the conns snapshot the proxy exposes as
	// shared features; end to end it should strongly prefer the idle
	// backend when the other is pinned busy.
	var logBuf bytes.Buffer
	p, backends := newCluster(t, leastLoadedPolicy{}, &logBuf)
	// Pin backend 0 with slow in-flight requests.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(backends[0].URL() + "/pin")
			if err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	// The pinner hits the backend directly, so the proxy's own counts
	// stay balanced; to create imbalance at the proxy, fire a burst.
	var burst sync.WaitGroup
	for i := 0; i < 30; i++ {
		burst.Add(1)
		go func() {
			defer burst.Done()
			resp, err := http.Get(p.URL() + "/ll")
			if err != nil {
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
	}
	burst.Wait()
	close(stop)
	wg.Wait()
	// Both backends should have seen proxy traffic (least-loaded
	// balances), and counts should be roughly even.
	s0 := countLog(&logBuf, "upstream=0")
	s1 := countLog(&logBuf, "upstream=1")
	if s0+s1 != 30 {
		t.Fatalf("logged %d+%d routed requests, want 30", s0, s1)
	}
	if s0 == 0 || s1 == 0 {
		t.Errorf("least-loaded should use both upstreams: %d/%d", s0, s1)
	}
}

// leastLoadedPolicy duplicates lbsim.LeastLoaded without importing lbsim in
// the test (it is exercised against the proxy's context layout).
type leastLoadedPolicy struct{}

func (leastLoadedPolicy) Act(ctx *core.Context) core.Action {
	best := 0
	for s := 1; s < ctx.NumActions; s++ {
		if ctx.Features[s] < ctx.Features[best] {
			best = s
		}
	}
	return core.Action(best)
}

func countLog(buf *bytes.Buffer, needle string) int {
	return strings.Count(buf.String(), needle)
}

func TestGenerateLoad(t *testing.T) {
	p, _ := newCluster(t, policy.UniformRandom{R: stats.NewRand(5)}, nil)
	res, err := GenerateLoad(p.URL(), 50, 500, stats.NewRand(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Latencies) != 50 || res.Errors != 0 {
		t.Fatalf("completed %d, errors %d", len(res.Latencies), res.Errors)
	}
	if res.Mean() <= 0 {
		t.Errorf("mean = %v", res.Mean())
	}
	p99, err := res.P99()
	if err != nil {
		t.Fatal(err)
	}
	if p99 < res.Mean() {
		t.Errorf("p99 %v < mean %v", p99, res.Mean())
	}
}

func TestGenerateLoadValidation(t *testing.T) {
	if _, err := GenerateLoad("http://x", 0, 10, stats.NewRand(1)); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := GenerateLoad("http://x", 10, 0, stats.NewRand(1)); err == nil {
		t.Error("rate=0 should fail")
	}
}

func TestLoadResultEmpty(t *testing.T) {
	var lr LoadResult
	if lr.Mean() != 0 {
		t.Error("empty mean should be 0")
	}
	if _, err := lr.P99(); err == nil {
		t.Error("empty p99 should error")
	}
}

// TestProxyMetrics drives traffic through an instrumented proxy and checks
// the per-backend series: request counts sum to the traffic sent, latency
// histograms carry the same counts, errors stay zero on a healthy cluster
// and increment when a backend dies mid-run.
func TestProxyMetrics(t *testing.T) {
	b0, err := StartBackend(0, time.Millisecond, 100*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b0.Close() })
	b1, err := StartBackend(1, time.Millisecond, 100*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b1.Close() })
	p, err := NewProxy([]string{b0.Addr(), b1.Addr()}, policy.UniformRandom{R: stats.NewRand(4)}, stats.NewRand(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	p.SetMetrics(reg)
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })

	const reqs = 40
	for i := 0; i < reqs; i++ {
		resp, err := http.Get(p.URL() + "/r")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	total := p.metrics.requests[0].Value() + p.metrics.requests[1].Value()
	if total != reqs {
		t.Errorf("requests total = %d, want %d", total, reqs)
	}
	for i := 0; i < 2; i++ {
		if p.metrics.errors[i].Value() != 0 {
			t.Errorf("backend %d errors = %d on healthy cluster", i, p.metrics.errors[i].Value())
		}
		snap := p.metrics.latency[i].Snapshot()
		if int64(snap.Count) != p.metrics.requests[i].Value() {
			t.Errorf("backend %d latency count %d != requests %d",
				i, snap.Count, p.metrics.requests[i].Value())
		}
		if snap.Count > 0 && snap.Sum <= 0 {
			t.Errorf("backend %d latency sum = %v", i, snap.Sum)
		}
	}

	// Exposition carries the per-backend series with sorted labels.
	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE netlb_backend_requests_total counter",
		"# TYPE netlb_backend_latency_seconds histogram",
		`netlb_backend_requests_total{backend="` + b0.Addr() + `"}`,
		`netlb_backend_active_requests{backend="` + b1.Addr() + `"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Kill backend 1: routed requests now fail and count as errors.
	b1.Close()
	for i := 0; i < 20; i++ {
		resp, err := http.Get(p.URL() + "/r")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if p.metrics.errors[1].Value() == 0 {
		t.Error("no errors recorded against the dead backend")
	}
	if p.metrics.errors[0].Value() != 0 {
		t.Errorf("healthy backend charged %d errors", p.metrics.errors[0].Value())
	}
}
