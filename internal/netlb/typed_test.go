package netlb

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harvester"
	"repro/internal/lbsim"
	"repro/internal/learn"
	"repro/internal/policy"
	"repro/internal/stats"
)

func TestTypeFromPath(t *testing.T) {
	cases := []struct {
		path string
		n    int
		want int
	}{
		{"/type/0/x", 2, 0},
		{"/type/1", 2, 1},
		{"/type/1/deep/path", 2, 1},
		{"/type/5", 2, -1},   // out of range
		{"/type/", 2, -1},    // no digits
		{"/typo/1", 2, -1},   // wrong prefix
		{"/", 2, -1},         // no type
		{"/type/1", 0, -1},   // types disabled
		{"/type/12", 20, 12}, // multi-digit
	}
	for _, c := range cases {
		if got := TypeFromPath(c.path, c.n); got != c.want {
			t.Errorf("TypeFromPath(%q, %d) = %d, want %d", c.path, c.n, got, c.want)
		}
	}
}

func TestBackendAffinitySlowsMismatchedType(t *testing.T) {
	b, err := StartBackend(0, 2*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Affinity = []time.Duration{0, 8 * time.Millisecond}
	fast := timeGet(t, b.URL()+"/type/0/x")
	slow := timeGet(t, b.URL()+"/type/1/x")
	if slow < fast+5*time.Millisecond {
		t.Errorf("affinity penalty missing: type0 %v, type1 %v", fast, slow)
	}
	// Untyped paths take no penalty.
	plain := timeGet(t, b.URL()+"/plain")
	if plain > fast+3*time.Millisecond {
		t.Errorf("untyped request penalized: %v vs %v", plain, fast)
	}
}

// TestTypedCBBeatsLeastLoadedOverRealHTTP is Table 2's CB-vs-least-loaded
// result on the real network: two backends each specialized for one request
// type, exploration harvested from the proxy's typed access log, a CB
// latency model trained offline, and both policies deployed and measured.
func TestTypedCBBeatsLeastLoadedOverRealHTTP(t *testing.T) {
	const numTypes = 2
	mk := func(id int, aff []time.Duration) *Backend {
		b, err := StartBackend(id, 2*time.Millisecond, 300*time.Microsecond)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Close() })
		b.Affinity = aff
		return b
	}
	// Backend 0 native on type 0, backend 1 native on type 1.
	b0 := mk(0, []time.Duration{0, 10 * time.Millisecond})
	b1 := mk(1, []time.Duration{10 * time.Millisecond, 0})

	fire := func(p *Proxy, n int, seed int64) time.Duration {
		r := stats.NewRand(seed)
		var wg sync.WaitGroup
		var mu sync.Mutex
		var totalLat time.Duration
		count := 0
		sem := make(chan struct{}, 8)
		for i := 0; i < n; i++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				reqType := i % numTypes
				start := time.Now()
				resp, err := http.Get(fmt.Sprintf("%s/type/%d/req%d", p.URL(), reqType, i))
				if err != nil {
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				mu.Lock()
				totalLat += time.Since(start)
				count++
				mu.Unlock()
			}(i)
			// light pacing so concurrency stays meaningful
			if r.Intn(4) == 0 {
				time.Sleep(time.Millisecond)
			}
		}
		wg.Wait()
		if count == 0 {
			t.Fatal("no requests completed")
		}
		return totalLat / time.Duration(count)
	}

	// Phase 1: harvest under random routing with typed logging.
	var logBuf strings.Builder
	explore, err := NewProxy([]string{b0.Addr(), b1.Addr()},
		policy.UniformRandom{R: stats.NewRand(1)}, stats.NewRand(2), &logBuf)
	if err != nil {
		t.Fatal(err)
	}
	explore.SetNumTypes(numTypes)
	if _, err := explore.Start(); err != nil {
		t.Fatal(err)
	}
	fire(explore, 400, 3)
	explore.Close()

	entries, err := harvester.ScavengeNginx(strings.NewReader(logBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	ds, skipped, err := harvester.NginxToTypedDataset(entries, numTypes)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(ds) == 0 {
		t.Fatalf("harvested %d (skipped %d)", len(ds), skipped)
	}
	// Typed contexts should carry the type one-hot.
	if len(ds[0].Context.Features) != 2+numTypes {
		t.Fatalf("typed shared features = %v", ds[0].Context.Features)
	}
	model, err := learn.FitRewardModel(ds, learn.FitOptions{Lambda: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	cbPolicy := model.GreedyPolicy(true)

	// Phase 2: deploy CB and least-loaded; CB should win by routing each
	// type to its native backend.
	cbProxy, err := NewProxy([]string{b0.Addr(), b1.Addr()}, cbPolicy, stats.NewRand(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	cbProxy.SetNumTypes(numTypes)
	if _, err := cbProxy.Start(); err != nil {
		t.Fatal(err)
	}
	defer cbProxy.Close()
	cbLat := fire(cbProxy, 300, 5)

	llProxy, err := NewProxy([]string{b0.Addr(), b1.Addr()}, lbsim.LeastLoaded{}, stats.NewRand(6), nil)
	if err != nil {
		t.Fatal(err)
	}
	llProxy.SetNumTypes(numTypes)
	if _, err := llProxy.Start(); err != nil {
		t.Fatal(err)
	}
	defer llProxy.Close()
	llLat := fire(llProxy, 300, 7)

	if cbLat >= llLat {
		t.Errorf("typed CB %v should beat least-loaded %v on real HTTP", cbLat, llLat)
	}
	t.Logf("CB %v vs least-loaded %v", cbLat, llLat)
}
