package netlb

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// HealthChecker probes upstreams periodically and exposes an up/down view,
// the way Nginx's health checks take failed backends out of rotation. When
// wired into a Proxy, routing renormalizes over the healthy set — which is
// also how chaos-style outages concentrate traffic and broaden exploration
// coverage on a *real* system (§5).
type HealthChecker struct {
	targets  []string
	interval time.Duration
	client   *http.Client

	mu      sync.RWMutex
	healthy []bool

	stop chan struct{}
	done chan struct{}
}

// NewHealthChecker builds a checker for the given upstream host:port
// addresses. All targets start healthy.
func NewHealthChecker(targets []string, interval time.Duration) (*HealthChecker, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("netlb: health checker needs targets")
	}
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	h := &HealthChecker{
		targets:  append([]string(nil), targets...),
		interval: interval,
		client: &http.Client{
			Timeout: interval,
		},
		healthy: make([]bool, len(targets)),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for i := range h.healthy {
		h.healthy[i] = true
	}
	return h, nil
}

// Start launches the probe loop (one immediate sweep, then periodic).
func (h *HealthChecker) Start() {
	go func() {
		defer close(h.done)
		h.sweep()
		t := time.NewTicker(h.interval)
		defer t.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-t.C:
				h.sweep()
			}
		}
	}()
}

// Stop halts the probe loop and waits for it to exit.
func (h *HealthChecker) Stop() {
	close(h.stop)
	<-h.done
}

// sweep probes every target once, in parallel.
func (h *HealthChecker) sweep() {
	results := make([]bool, len(h.targets))
	var wg sync.WaitGroup
	for i, target := range h.targets {
		wg.Add(1)
		go func(i int, target string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), h.interval)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+target+"/", nil)
			if err != nil {
				return
			}
			resp, err := h.client.Do(req)
			if err != nil {
				return
			}
			_ = resp.Body.Close()
			results[i] = resp.StatusCode < 500
		}(i, target)
	}
	wg.Wait()
	h.mu.Lock()
	copy(h.healthy, results)
	h.mu.Unlock()
}

// Healthy returns a snapshot of the per-target health flags.
func (h *HealthChecker) Healthy() []bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return append([]bool(nil), h.healthy...)
}

// SetHealth overrides one target's flag (used by tests and by chaos
// injection to force an outage without killing the process).
func (h *HealthChecker) SetHealth(i int, up bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if i >= 0 && i < len(h.healthy) {
		h.healthy[i] = up
	}
}
