package netlb

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/stats"
)

// LoadResult summarizes a load-generation run against the proxy.
type LoadResult struct {
	// Latencies holds one end-to-end request time per completed request.
	Latencies []time.Duration
	// Errors counts failed requests.
	Errors int
}

// Mean returns the mean latency.
func (lr *LoadResult) Mean() time.Duration {
	if len(lr.Latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range lr.Latencies {
		sum += l
	}
	return sum / time.Duration(len(lr.Latencies))
}

// P99 returns the 99th-percentile latency.
func (lr *LoadResult) P99() (time.Duration, error) {
	xs := make([]float64, len(lr.Latencies))
	for i, l := range lr.Latencies {
		xs[i] = float64(l)
	}
	q, err := stats.Quantile(xs, 0.99)
	if err != nil {
		return 0, err
	}
	return time.Duration(q), nil
}

// GenerateLoad fires n GET requests at url with Poisson arrivals of the
// given rate (requests/second). Requests run concurrently, as a real open
// system would. It returns when all responses have arrived.
func GenerateLoad(url string, n int, ratePerSec float64, r *rand.Rand) (*LoadResult, error) {
	if n <= 0 || ratePerSec <= 0 {
		return nil, fmt.Errorf("netlb: load n=%d rate=%v", n, ratePerSec)
	}
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConnsPerHost: 256,
		},
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		res  LoadResult
		mean = time.Duration(float64(time.Second) / ratePerSec)
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			resp, err := client.Get(fmt.Sprintf("%s/req/%d", url, i))
			if err != nil {
				mu.Lock()
				res.Errors++
				mu.Unlock()
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			elapsed := time.Since(start)
			mu.Lock()
			if resp.StatusCode == http.StatusOK {
				res.Latencies = append(res.Latencies, elapsed)
			} else {
				res.Errors++
			}
			mu.Unlock()
		}(i)
		// Poisson inter-arrival gap (in real time).
		gap := time.Duration(r.ExpFloat64() * float64(mean))
		time.Sleep(gap)
	}
	wg.Wait()
	return &res, nil
}
