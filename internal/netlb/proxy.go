package netlb

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lbsim"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Proxy is an HTTP reverse-proxy load balancer with a pluggable routing
// policy. Like Nginx, it knows each upstream's active connection count
// because every request flows through it; that count vector is the routing
// context. Each access is logged in an Nginx-combined-style line extended
// with the upstream choice, per-upstream connection counts, the decision
// propensity, and the request time — everything the harvester needs.
type Proxy struct {
	backends []string // upstream host:port
	policy   core.Policy
	r        *rand.Rand

	mu    sync.Mutex
	conns []int // active requests per upstream (LB's own view)

	logMu sync.Mutex
	logW  io.Writer
	// lastLogNano is the wall time of the last access-log write, for the
	// log-freshness gauge (0: never). The access log is the head of the
	// harvest pipeline, so a watcher comparing it against harvestd's fold
	// watermark can tell "no traffic" apart from "pipeline stuck".
	lastLogNano atomic.Int64

	health   *HealthChecker
	numTypes int
	metrics  *proxyMetrics

	client *http.Client
	ln     net.Listener
	srv    *http.Server
}

// proxyMetrics caches per-backend instrument handles: the registry lookup
// locks, so handles are resolved once in SetMetrics and indexed by the
// routing action on the hot path.
type proxyMetrics struct {
	requests   []*obs.Counter
	errors     []*obs.Counter
	latency    []*obs.Histogram
	logRecords *obs.Counter
}

// SetMetrics registers per-backend instruments on the registry and starts
// recording: request and error counts, a request latency histogram, and a
// scrape-time active-request gauge, all labelled by backend address. Call
// before Start.
func (p *Proxy) SetMetrics(r *obs.Registry) {
	m := &proxyMetrics{
		requests: make([]*obs.Counter, len(p.backends)),
		errors:   make([]*obs.Counter, len(p.backends)),
		latency:  make([]*obs.Histogram, len(p.backends)),
	}
	for i, addr := range p.backends {
		m.requests[i] = r.Counter("netlb_backend_requests_total",
			"requests routed to the backend", "backend", addr)
		m.errors[i] = r.Counter("netlb_backend_errors_total",
			"proxy failures and 5xx responses from the backend", "backend", addr)
		m.latency[i] = r.Histogram("netlb_backend_latency_seconds",
			"request time through the backend", obs.DefLatencyBuckets(), "backend", addr)
		i := i
		r.GaugeFunc("netlb_backend_active_requests",
			"in-flight requests on the backend", func() float64 {
				p.mu.Lock()
				defer p.mu.Unlock()
				return float64(p.conns[i])
			}, "backend", addr)
	}
	m.logRecords = r.Counter("netlb_log_records_total",
		"access-log lines written for the harvester")
	r.GaugeFunc("netlb_log_last_write_age_seconds",
		"seconds since the last access-log write (-1 never)", func() float64 {
			nano := p.lastLogNano.Load()
			if nano == 0 {
				return -1
			}
			return time.Since(time.Unix(0, nano)).Seconds()
		})
	p.metrics = m
}

// observe records one completed request against the chosen backend.
func (p *Proxy) observe(a core.Action, status int, rt time.Duration) {
	m := p.metrics
	if m == nil || int(a) >= len(m.requests) {
		return
	}
	m.requests[a].Inc()
	if status >= 500 {
		m.errors[a].Inc()
	}
	m.latency[a].Observe(rt.Seconds())
}

// SetPolicy swaps the routing policy. Safe while serving: decisions read
// the policy under the same lock, so every request is routed and logged
// entirely by one policy or the other, never a mix. A rollout controller
// uses this to lock in a fully promoted candidate (the epsilon ramp itself
// goes through a policy.DynamicBlend share, not a policy swap).
func (p *Proxy) SetPolicy(pol core.Policy) error {
	if pol == nil {
		return fmt.Errorf("netlb: nil policy")
	}
	p.mu.Lock()
	p.policy = pol
	p.mu.Unlock()
	return nil
}

// SetNumTypes enables typed routing contexts: requests with paths of the
// form /type/<t>/... are routed with the type one-hot in the context (and
// logged), so contextual policies can specialize per request class. Call
// before Start.
func (p *Proxy) SetNumTypes(n int) { p.numTypes = n }

// SetHealthChecker wires a health view into routing: the proxy masks down
// upstreams and renormalizes the policy's distribution over the healthy
// set, logging the renormalized propensity. Call before Start.
func (p *Proxy) SetHealthChecker(h *HealthChecker) { p.health = h }

// NewProxy builds a proxy over the given upstream addresses. logW receives
// access-log lines (may be nil to disable logging). The rand source drives
// stochastic policies.
func NewProxy(upstreams []string, pol core.Policy, r *rand.Rand, logW io.Writer) (*Proxy, error) {
	if len(upstreams) < 2 {
		return nil, fmt.Errorf("netlb: need at least 2 upstreams, got %d", len(upstreams))
	}
	if pol == nil {
		return nil, fmt.Errorf("netlb: nil policy")
	}
	if r == nil {
		r = stats.NewRand(0)
	}
	return &Proxy{
		backends: append([]string(nil), upstreams...),
		policy:   pol,
		r:        r,
		conns:    make([]int, len(upstreams)),
		logW:     logW,
		client: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 64,
			},
		},
	}, nil
}

// Start listens on an ephemeral localhost port and serves until Close.
func (p *Proxy) Start() (net.Addr, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netlb: proxy listen: %w", err)
	}
	p.ln = ln
	p.srv = &http.Server{Handler: p}
	go func() { _ = p.srv.Serve(ln) }()
	return ln.Addr(), nil
}

// Addr returns the proxy's host:port (after Start).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL returns the proxy's base URL (after Start).
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// Close shuts down the proxy listener.
func (p *Proxy) Close() error {
	if p.srv == nil {
		return nil
	}
	return p.srv.Close()
}

// route makes one routing decision under the lock: snapshot the context,
// pick an action (masked to healthy upstreams when a health checker is
// wired), record its propensity, and bump the chosen counter.
func (p *Proxy) route(reqType int) (a core.Action, propensity float64, snapshot []int) {
	var healthy []bool
	if p.health != nil {
		healthy = p.health.Healthy()
	}
	numTypes := p.numTypes
	if numTypes <= 1 || reqType < 0 {
		numTypes, reqType = 1, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	snapshot = append([]int(nil), p.conns...)
	ctx := lbsim.BuildContext(snapshot, reqType, numTypes)
	if sp, ok := p.policy.(core.StochasticPolicy); ok {
		dist := sp.Distribution(&ctx)
		dist = maskDistribution(dist, healthy)
		i := stats.Categorical(p.r, dist)
		if i < 0 {
			i = 0
		}
		a, propensity = core.Action(i), dist[i]
	} else {
		a, propensity = p.policy.Act(&ctx), 1
		if healthy != nil && int(a) < len(healthy) && !healthy[a] {
			for s, up := range healthy {
				if up {
					a = core.Action(s)
					break
				}
			}
		}
	}
	if int(a) >= len(p.backends) {
		a = core.Action(len(p.backends) - 1)
	}
	p.conns[a]++
	return a, propensity, snapshot
}

// maskDistribution zeroes probabilities of down upstreams and renormalizes.
// If the mask empties the policy's support but some upstreams are healthy
// (e.g. a point-mass policy whose target is down), it falls back to uniform
// over the healthy set; if every upstream is down, the original
// distribution is returned — failing over to nothing helps nobody.
func maskDistribution(dist []float64, healthy []bool) []float64 {
	if healthy == nil {
		return dist
	}
	masked := make([]float64, len(dist))
	total := 0.0
	nHealthy := 0
	for i, p := range dist {
		if i < len(healthy) && healthy[i] {
			masked[i] = p
			total += p
			nHealthy++
		}
	}
	if nHealthy == 0 {
		return dist
	}
	if total <= 0 {
		for i := range masked {
			if i < len(healthy) && healthy[i] {
				masked[i] = 1 / float64(nHealthy)
			}
		}
		return masked
	}
	for i := range masked {
		masked[i] /= total
	}
	return masked
}

func (p *Proxy) release(a core.Action) {
	p.mu.Lock()
	p.conns[a]--
	p.mu.Unlock()
}

// ServeHTTP implements http.Handler: route, proxy, log.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	reqType := -1
	if p.numTypes > 1 {
		reqType = TypeFromPath(r.URL.Path, p.numTypes)
	}
	a, prop, snapshot := p.route(reqType)
	defer p.release(a)
	start := time.Now()

	outURL := "http://" + p.backends[a] + r.URL.Path
	if r.URL.RawQuery != "" {
		outURL += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, outURL, r.Body)
	if err != nil {
		http.Error(w, "bad gateway: "+err.Error(), http.StatusBadGateway)
		p.observe(a, http.StatusBadGateway, time.Since(start))
		p.logAccess(r, http.StatusBadGateway, 0, time.Since(start), a, prop, snapshot, reqType)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		http.Error(w, "bad gateway: "+err.Error(), http.StatusBadGateway)
		p.observe(a, http.StatusBadGateway, time.Since(start))
		p.logAccess(r, http.StatusBadGateway, 0, time.Since(start), a, prop, snapshot, reqType)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	n, _ := io.Copy(w, resp.Body)
	p.observe(a, resp.StatusCode, time.Since(start))
	p.logAccess(r, resp.StatusCode, n, time.Since(start), a, prop, snapshot, reqType)
}

// logAccess emits one Nginx-style access-log line:
//
//	remote - - [time] "METHOD path HTTP/1.1" status bytes "-" "ua" rt=0.123 upstream=1 conns=3|5 prop=0.5
//
// The trailing key=value fields mirror how Nginx deployments add
// $request_time / $upstream_addr / custom variables to log_format — the
// paper's point that "existing logging modules already provided what we
// needed, and simply needed to be configured".
func (p *Proxy) logAccess(r *http.Request, status int, bytes int64, rt time.Duration, a core.Action, prop float64, conns []int, reqType int) {
	if p.logW == nil {
		return
	}
	connsStr := make([]string, len(conns))
	for i, c := range conns {
		connsStr[i] = fmt.Sprint(c)
	}
	remote := r.RemoteAddr
	if remote == "" {
		remote = "-"
	}
	typeField := ""
	if p.numTypes > 1 && reqType >= 0 {
		typeField = fmt.Sprintf(" type=%d", reqType)
	}
	line := fmt.Sprintf("%s - - [%s] \"%s %s %s\" %d %d \"-\" \"%s\" rt=%.6f upstream=%d conns=%s prop=%.6f%s\n",
		remote,
		time.Now().Format("02/Jan/2006:15:04:05 -0700"),
		r.Method, r.URL.RequestURI(), r.Proto,
		status, bytes,
		r.UserAgent(),
		rt.Seconds(), int(a), strings.Join(connsStr, "|"), prop, typeField)
	p.logMu.Lock()
	_, _ = io.WriteString(p.logW, line)
	p.logMu.Unlock()
	p.lastLogNano.Store(time.Now().UnixNano())
	if m := p.metrics; m != nil {
		m.logRecords.Inc()
	}
}

// Conns returns a snapshot of the per-upstream active request counts.
func (p *Proxy) Conns() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]int(nil), p.conns...)
}
