package netlb

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/stats"
)

func TestHealthCheckerProbesLiveness(t *testing.T) {
	b0, err := StartBackend(0, time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b0.Close()
	b1, err := StartBackend(1, time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}

	h, err := NewHealthChecker([]string{b0.Addr(), b1.Addr()}, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	defer h.Stop()

	waitFor := func(want []bool) bool {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			got := h.Healthy()
			if got[0] == want[0] && got[1] == want[1] {
				return true
			}
			time.Sleep(10 * time.Millisecond)
		}
		return false
	}
	if !waitFor([]bool{true, true}) {
		t.Fatalf("both backends should probe healthy: %v", h.Healthy())
	}
	// Kill backend 1; the checker must notice.
	b1.Close()
	if !waitFor([]bool{true, false}) {
		t.Fatalf("checker missed the outage: %v", h.Healthy())
	}
}

func TestHealthCheckerValidation(t *testing.T) {
	if _, err := NewHealthChecker(nil, time.Second); err == nil {
		t.Error("no targets should fail")
	}
	h, err := NewHealthChecker([]string{"127.0.0.1:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Default interval applied; SetHealth bounds-checked.
	h.SetHealth(5, false) // out of range: no panic, no effect
	h.SetHealth(0, false)
	if h.Healthy()[0] {
		t.Error("SetHealth(0,false) ignored")
	}
}

func TestMaskDistribution(t *testing.T) {
	dist := []float64{0.5, 0.3, 0.2}
	got := maskDistribution(dist, []bool{true, false, true})
	if got[1] != 0 {
		t.Errorf("down upstream kept mass: %v", got)
	}
	if abs := got[0] + got[2] - 1; abs > 1e-12 || abs < -1e-12 {
		t.Errorf("not renormalized: %v", got)
	}
	if got[0] < got[2] {
		t.Errorf("relative order broken: %v", got)
	}
	// All-down mask falls back to the original.
	same := maskDistribution(dist, []bool{false, false, false})
	if same[0] != 0.5 {
		t.Errorf("all-down fallback broken: %v", same)
	}
	// nil mask is a no-op.
	if maskDistribution(dist, nil)[0] != 0.5 {
		t.Error("nil mask should be identity")
	}
}

func TestProxyFailsOverDuringOutage(t *testing.T) {
	var logBuf bytes.Buffer
	b0, err := StartBackend(0, time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b0.Close()
	b1, err := StartBackend(1, time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b1.Close()

	h, err := NewHealthChecker([]string{b0.Addr(), b1.Addr()}, time.Hour) // manual control
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProxy([]string{b0.Addr(), b1.Addr()},
		policy.UniformRandom{R: stats.NewRand(1)}, stats.NewRand(2), &logBuf)
	if err != nil {
		t.Fatal(err)
	}
	p.SetHealthChecker(h)
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Outage: backend 1 marked down (chaos injection).
	h.SetHealth(1, false)
	for i := 0; i < 20; i++ {
		resp, err := http.Get(p.URL() + "/failover")
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d during failover", resp.StatusCode)
		}
	}
	if b1.Served() != 0 {
		t.Errorf("down backend served %d requests", b1.Served())
	}
	if b0.Served() != 20 {
		t.Errorf("survivor served %d, want 20", b0.Served())
	}
	// Propensity during the outage is 1 (single-action support) — the
	// harvestable record of the concentrated exploration chaos creates.
	if !strings.Contains(logBuf.String(), "prop=1.0") {
		t.Error("outage routing should log propensity 1")
	}

	// Recovery: traffic spreads again.
	h.SetHealth(1, true)
	for i := 0; i < 40; i++ {
		resp, err := http.Get(p.URL() + "/recovered")
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if b1.Served() == 0 {
		t.Error("recovered backend got no traffic")
	}
}

func TestDeterministicPolicyFailsOver(t *testing.T) {
	b0, err := StartBackend(0, time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b0.Close()
	b1, err := StartBackend(1, time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b1.Close()
	h, err := NewHealthChecker([]string{b0.Addr(), b1.Addr()}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProxy([]string{b0.Addr(), b1.Addr()},
		policy.Constant{A: 0}, stats.NewRand(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	p.SetHealthChecker(h)
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	h.SetHealth(0, false) // the constant policy's target goes down
	for i := 0; i < 10; i++ {
		resp, err := http.Get(p.URL() + "/x")
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	if b1.Served() != 10 || b0.Served() != 0 {
		t.Errorf("failover split %d/%d, want 0/10", b0.Served(), b1.Served())
	}
}
