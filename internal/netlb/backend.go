// Package netlb is the real-network load-balancing substrate: an HTTP
// reverse proxy with pluggable routing policies and Nginx-style access
// logging, plus backends whose service time grows with concurrent requests
// — a live prototype of the paper's Nginx scenario (§3, §5).
//
// Where package lbsim reproduces Fig. 5 in a deterministic discrete-event
// world, netlb exercises the actual data path the paper harvested: real
// sockets, a real proxy making a randomized routing decision per request,
// and an access log from which ⟨x, a, r, p⟩ tuples are scavenged (see the
// harvester package's Nginx log parser).
package netlb

import (
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// Backend is an HTTP server whose handler holds each request for
// Base + Slope·(inflight−1): the Fig. 5 latency model with open
// connections replaced by in-flight requests. Optional per-type affinities
// add a penalty depending on the request's type (parsed from the path, see
// TypeFromPath) — the "different types of requests are processed
// differently by different servers" effect of §5.
type Backend struct {
	// ID is the backend's index in the LB's action space.
	ID int
	// Base and Slope define the service-time model.
	Base, Slope time.Duration
	// Affinity[t] adds a penalty for type-t requests (nil disables).
	Affinity []time.Duration

	inflight atomic.Int64
	served   atomic.Int64
	ln       net.Listener
	srv      *http.Server
}

// StartBackend launches a backend on an ephemeral localhost port.
func StartBackend(id int, base, slope time.Duration) (*Backend, error) {
	if base <= 0 || slope < 0 {
		return nil, fmt.Errorf("netlb: backend %d timing base=%v slope=%v", id, base, slope)
	}
	b := &Backend{ID: id, Base: base, Slope: slope}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netlb: backend %d listen: %w", id, err)
	}
	b.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/", b.handle)
	b.srv = &http.Server{Handler: mux}
	go func() { _ = b.srv.Serve(ln) }()
	return b, nil
}

func (b *Backend) handle(w http.ResponseWriter, r *http.Request) {
	n := b.inflight.Add(1)
	defer b.inflight.Add(-1)
	delay := b.Base + time.Duration(n-1)*b.Slope
	if len(b.Affinity) > 0 {
		if t := TypeFromPath(r.URL.Path, len(b.Affinity)); t >= 0 {
			delay += b.Affinity[t]
		}
	}
	time.Sleep(delay)
	b.served.Add(1)
	w.Header().Set("X-Backend", fmt.Sprint(b.ID))
	fmt.Fprintf(w, "backend %d served %s after %v\n", b.ID, r.URL.Path, delay)
}

// TypeFromPath extracts a request type from paths of the form
// "/type/<t>/..." (the convention the typed load generator uses). It
// returns -1 when the path carries no type or the type is out of range.
func TypeFromPath(path string, numTypes int) int {
	const prefix = "/type/"
	if numTypes <= 0 || len(path) <= len(prefix) || path[:len(prefix)] != prefix {
		return -1
	}
	rest := path[len(prefix):]
	t := 0
	i := 0
	for ; i < len(rest) && rest[i] >= '0' && rest[i] <= '9'; i++ {
		t = t*10 + int(rest[i]-'0')
		if t >= numTypes {
			return -1
		}
	}
	if i == 0 {
		return -1
	}
	return t
}

// Addr returns the backend's host:port.
func (b *Backend) Addr() string { return b.ln.Addr().String() }

// URL returns the backend's base URL.
func (b *Backend) URL() string { return "http://" + b.Addr() }

// Inflight returns the current number of in-flight requests.
func (b *Backend) Inflight() int64 { return b.inflight.Load() }

// Served returns the total requests completed.
func (b *Backend) Served() int64 { return b.served.Load() }

// Close shuts the backend down.
func (b *Backend) Close() error { return b.srv.Close() }
