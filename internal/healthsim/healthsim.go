// Package healthsim is the machine-health substrate: a generative model of
// the Azure Compute scenario in §4 of "Harvesting Randomness to Optimize
// Distributed Systems" (HotNets 2017).
//
// The real scenario: a machine stops responding; the controller must decide
// how long to wait before rebooting it. Waiting can pay off (the machine
// self-recovers, avoiding an expensive reboot) or cost dearly (downtime
// accrues while nothing recovers). Azure's deployed policy waited the
// maximum time (10 minutes), which reveals the downtime of *every* shorter
// wait — a full-feedback dataset. The paper exploits this to both simulate
// partial-feedback exploration and score policies against ground truth.
//
// Our substitute preserves exactly that structure. Each failure episode
// draws a machine context (hardware SKU, OS, age, failure history, VM
// count) and latent recovery behaviour whose distribution depends on the
// context. For a wait of w minutes:
//
//	downtime(w) = t_recover                 if the machine self-recovers at t ≤ w
//	            = w + rebootCost(context)   otherwise
//
// which is computable for every w in {1..9} from one latent draw — full
// feedback, like the paper's dataset. Rewards are negative downtime,
// optionally scaled by the number of customer VMs on the machine.
package healthsim

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/stats"
)

// NumWaitActions is the paper's action count: wait w ∈ {1, 2, ..., 9}
// minutes (action a means waiting a+1 minutes).
const NumWaitActions = 9

// WaitMinutes converts an action index to its wait time in minutes.
func WaitMinutes(a core.Action) float64 { return float64(a) + 1 }

// Config parameterizes the generative model. Zero fields take defaults from
// DefaultConfig.
type Config struct {
	// NumSKUs / NumOSes set the one-hot hardware and OS vocabulary.
	NumSKUs, NumOSes int
	// MaxPriorFailures bounds the failure-history feature.
	MaxPriorFailures int
	// MaxVMs bounds the per-machine VM count (reward scaling).
	MaxVMs int
	// RebootBase/RebootPerSKU shape the reboot cost in minutes.
	RebootBase, RebootPerSKU float64
	// ScaleByVMs multiplies downtime by the VM count (the paper's
	// "[-] total downtime (scaled by # of VMs)").
	ScaleByVMs bool
}

// DefaultConfig returns the configuration used by the repository's
// experiments.
func DefaultConfig() Config {
	return Config{
		NumSKUs:          4,
		NumOSes:          3,
		MaxPriorFailures: 5,
		MaxVMs:           8,
		RebootBase:       6,
		RebootPerSKU:     1.5,
	}
}

// Episode is one machine-failure event with its latent recovery draw.
type Episode struct {
	SKU           int
	OS            int
	Age           float64 // years
	PriorFailures int
	VMs           int
	// Recovers reports whether the machine would self-recover at all
	// within the horizon; RecoverAt is the recovery time in minutes.
	Recovers  bool
	RecoverAt float64
}

// Generator draws failure episodes.
type Generator struct {
	cfg Config
	r   *rand.Rand
}

// NewGenerator validates the config and builds a generator.
func NewGenerator(r *rand.Rand, cfg Config) (*Generator, error) {
	if r == nil {
		return nil, fmt.Errorf("healthsim: nil rand")
	}
	def := DefaultConfig()
	if cfg.NumSKUs <= 0 {
		cfg.NumSKUs = def.NumSKUs
	}
	if cfg.NumOSes <= 0 {
		cfg.NumOSes = def.NumOSes
	}
	if cfg.MaxPriorFailures <= 0 {
		cfg.MaxPriorFailures = def.MaxPriorFailures
	}
	if cfg.MaxVMs <= 0 {
		cfg.MaxVMs = def.MaxVMs
	}
	if cfg.RebootBase <= 0 {
		cfg.RebootBase = def.RebootBase
	}
	if cfg.RebootPerSKU < 0 {
		cfg.RebootPerSKU = def.RebootPerSKU
	}
	return &Generator{cfg: cfg, r: r}, nil
}

// Dim returns the feature dimension of generated contexts.
func (g *Generator) Dim() int {
	return g.cfg.NumSKUs + g.cfg.NumOSes + 3 // + age, priorFailures, vms
}

// drawEpisode samples a machine and its latent recovery behaviour.
func (g *Generator) drawEpisode() Episode {
	e := Episode{
		SKU:           g.r.Intn(g.cfg.NumSKUs),
		OS:            g.r.Intn(g.cfg.NumOSes),
		Age:           g.r.Float64() * 5,
		PriorFailures: g.r.Intn(g.cfg.MaxPriorFailures + 1),
		VMs:           1 + g.r.Intn(g.cfg.MaxVMs),
	}
	// Self-recovery probability: newer SKUs and machines with few prior
	// failures recover more often. Range ≈ [0.15, 0.9].
	pRec := 0.9 - 0.12*float64(e.SKU) - 0.08*float64(e.PriorFailures) - 0.02*e.Age
	if pRec < 0.15 {
		pRec = 0.15
	}
	e.Recovers = g.r.Float64() < pRec
	if e.Recovers {
		// Recovery time: OS-dependent mean, exponential tail. Mean in
		// [1.5, 6.5] minutes so the optimal wait genuinely varies by
		// context.
		mean := 1.5 + 1.8*float64(e.OS) + 0.15*float64(e.PriorFailures)
		e.RecoverAt = g.r.ExpFloat64() * mean
		if e.RecoverAt > 60 {
			e.RecoverAt = 60
		}
	}
	return e
}

// rebootCost returns the reboot penalty in minutes for the episode's machine.
func (g *Generator) rebootCost(e *Episode) float64 {
	return g.cfg.RebootBase + g.cfg.RebootPerSKU*float64(e.SKU) + 0.2*float64(e.OS)
}

// Downtime returns the downtime in minutes if the controller waits w
// minutes before rebooting.
func (g *Generator) Downtime(e *Episode, waitMinutes float64) float64 {
	if e.Recovers && e.RecoverAt <= waitMinutes {
		return e.RecoverAt
	}
	return waitMinutes + g.rebootCost(e)
}

// Features encodes the episode's observable context (the latent recovery
// draw is NOT included — that is the whole point).
func (g *Generator) Features(e *Episode) core.Vector {
	v := make(core.Vector, g.Dim())
	v[e.SKU] = 1
	v[g.cfg.NumSKUs+e.OS] = 1
	base := g.cfg.NumSKUs + g.cfg.NumOSes
	v[base] = e.Age / 5
	v[base+1] = float64(e.PriorFailures) / float64(g.cfg.MaxPriorFailures)
	v[base+2] = float64(e.VMs) / float64(g.cfg.MaxVMs)
	return v
}

// Generate draws n episodes as a full-feedback dataset: every row carries
// the reward (negative downtime) of all nine wait actions.
func (g *Generator) Generate(n int) learn.FullFeedbackDataset {
	ds := make(learn.FullFeedbackDataset, n)
	for i := range ds {
		e := g.drawEpisode()
		rewards := make([]float64, NumWaitActions)
		scale := 1.0
		if g.cfg.ScaleByVMs {
			scale = float64(e.VMs)
		}
		for a := 0; a < NumWaitActions; a++ {
			rewards[a] = -g.Downtime(&e, WaitMinutes(core.Action(a))) * scale
		}
		ds[i] = learn.FullFeedbackRow{
			Context: core.Context{
				Features:   g.Features(&e),
				NumActions: NumWaitActions,
			},
			Rewards: rewards,
		}
	}
	return ds
}

// DefaultPolicy is the paper's safe deployed policy: wait the maximum time.
// (In the paper the max is 10 minutes; within the CB action set it is the
// largest wait, 9 minutes.)
func DefaultPolicy() core.Policy {
	return core.PolicyFunc(func(ctx *core.Context) core.Action {
		return core.Action(ctx.NumActions - 1)
	})
}

// NormalizeRewards maps raw negative-downtime rewards into [0, 1] (1 = no
// downtime) so the distribution-free bounds of Eq. 1 apply directly. It
// returns a copy; maxDowntime clamps.
func NormalizeRewards(ds core.Dataset, maxDowntime float64) core.Dataset {
	if maxDowntime <= 0 {
		maxDowntime = 1
	}
	out := make(core.Dataset, len(ds))
	copy(out, ds)
	for i := range out {
		d := -out[i].Reward // downtime
		if d < 0 {
			d = 0
		}
		if d > maxDowntime {
			d = maxDowntime
		}
		out[i].Reward = 1 - d/maxDowntime
	}
	return out
}

// MaxPossibleDowntime bounds the downtime of any action for normalization:
// the longest wait plus the largest reboot cost.
func (g *Generator) MaxPossibleDowntime() float64 {
	return float64(NumWaitActions) +
		g.cfg.RebootBase + g.cfg.RebootPerSKU*float64(g.cfg.NumSKUs-1) + 0.2*float64(g.cfg.NumOSes-1)
}

// OptimalExpectedDowntime estimates, by fresh Monte Carlo, the expected
// downtime of the omniscient policy (best wait per episode) — a lower bound
// no learner can beat.
func OptimalExpectedDowntime(seed int64, cfg Config, n int) (float64, error) {
	g, err := NewGenerator(randFrom(seed), cfg)
	if err != nil {
		return 0, err
	}
	ds := g.Generate(n)
	return -ds.OptimalMeanReward(false), nil
}

func randFrom(seed int64) *rand.Rand { return stats.NewRand(seed) }
