package healthsim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/ope"
	"repro/internal/stats"
)

func newGen(t *testing.T, seed int64) *Generator {
	t.Helper()
	g, err := NewGenerator(stats.NewRand(seed), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(nil, DefaultConfig()); err == nil {
		t.Error("nil rand should fail")
	}
	// Zero config takes defaults.
	g, err := NewGenerator(stats.NewRand(1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Dim() != 4+3+3 {
		t.Errorf("default Dim = %d, want 10", g.Dim())
	}
}

func TestGenerateShape(t *testing.T) {
	g := newGen(t, 1)
	ds := g.Generate(500)
	if len(ds) != 500 {
		t.Fatalf("len = %d", len(ds))
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range ds {
		if ds[i].Context.NumActions != NumWaitActions {
			t.Fatalf("row %d has %d actions", i, ds[i].Context.NumActions)
		}
		if len(ds[i].Context.Features) != g.Dim() {
			t.Fatalf("row %d dim %d", i, len(ds[i].Context.Features))
		}
		for a, r := range ds[i].Rewards {
			if r > 0 {
				t.Fatalf("row %d action %d reward %v > 0 (rewards are -downtime)", i, a, r)
			}
		}
	}
}

func TestDowntimeSemantics(t *testing.T) {
	g := newGen(t, 2)
	e := Episode{SKU: 1, OS: 1, Recovers: true, RecoverAt: 3}
	// Waiting long enough: downtime = recovery time.
	if d := g.Downtime(&e, 5); d != 3 {
		t.Errorf("downtime(wait=5) = %v, want 3", d)
	}
	// Waiting too little: downtime = wait + reboot cost.
	reboot := g.rebootCost(&e)
	if d := g.Downtime(&e, 2); d != 2+reboot {
		t.Errorf("downtime(wait=2) = %v, want %v", d, 2+reboot)
	}
	// Never recovers: always wait + reboot.
	e2 := Episode{SKU: 0, Recovers: false}
	if d := g.Downtime(&e2, 4); d != 4+g.rebootCost(&e2) {
		t.Errorf("no-recovery downtime = %v", d)
	}
}

func TestDowntimeMonotoneWhenNoRecovery(t *testing.T) {
	g := newGen(t, 3)
	e := Episode{SKU: 2, OS: 1, Recovers: false}
	prev := -1.0
	for a := core.Action(0); a < NumWaitActions; a++ {
		d := g.Downtime(&e, WaitMinutes(a))
		if d <= prev {
			t.Fatalf("downtime should grow with wait when machine never recovers")
		}
		prev = d
	}
}

func TestContextMattersForOptimalAction(t *testing.T) {
	// The optimal wait should genuinely vary with context — otherwise the
	// scenario would not be a contextual problem. Check that the
	// ground-truth best action is not constant across a large sample.
	g := newGen(t, 4)
	ds := g.Generate(5000)
	counts := make(map[core.Action]int)
	for i := range ds {
		counts[ds[i].BestAction(false)]++
	}
	if len(counts) < 3 {
		t.Errorf("best action almost constant: %v", counts)
	}
}

func TestWaitMinutes(t *testing.T) {
	if WaitMinutes(0) != 1 || WaitMinutes(8) != 9 {
		t.Error("action a should mean a+1 minutes")
	}
}

func TestDefaultPolicyWaitsMax(t *testing.T) {
	p := DefaultPolicy()
	ctx := &core.Context{NumActions: NumWaitActions}
	if p.Act(ctx) != NumWaitActions-1 {
		t.Errorf("default policy should wait longest")
	}
}

func TestLearnedPolicyBeatsDefault(t *testing.T) {
	// The §4 result in miniature: a CB policy trained on simulated
	// exploration data outperforms the safe default.
	g := newGen(t, 5)
	train := g.Generate(8000)
	test := g.Generate(4000)

	expl := learn.SimulateExploration(stats.NewRand(6), train)
	model, err := learn.FitRewardModel(expl, learn.FitOptions{NumActions: NumWaitActions})
	if err != nil {
		t.Fatal(err)
	}
	cb := model.GreedyPolicy(false) // rewards are -downtime: maximize

	cbDowntime := -test.MeanReward(cb)
	defDowntime := -test.MeanReward(DefaultPolicy())
	optDowntime := -test.OptimalMeanReward(false)
	if cbDowntime >= defDowntime {
		t.Errorf("CB downtime %v should beat default %v", cbDowntime, defDowntime)
	}
	if cbDowntime < optDowntime {
		t.Errorf("CB downtime %v beats the omniscient optimum %v — impossible", cbDowntime, optDowntime)
	}
}

func TestIPSEstimateMatchesGroundTruth(t *testing.T) {
	// Off-policy evaluation on simulated exploration should agree with
	// the full-feedback ground truth (this is Fig. 3's mechanism).
	g := newGen(t, 7)
	test := g.Generate(6000)
	expl := learn.SimulateExploration(stats.NewRand(8), test)

	pol := core.PolicyFunc(func(ctx *core.Context) core.Action { return 2 })
	truth := test.MeanReward(pol)
	est, err := (ope.IPS{}).Estimate(pol, expl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-truth) > 4*est.StdErr+0.05 {
		t.Errorf("ips = %v, ground truth = %v (se %v)", est.Value, truth, est.StdErr)
	}
}

func TestNormalizeRewards(t *testing.T) {
	ds := core.Dataset{
		{Reward: 0, Propensity: 0.5},   // no downtime → 1
		{Reward: -10, Propensity: 0.5}, // 10 min downtime
		{Reward: -99, Propensity: 0.5}, // clamped
	}
	out := NormalizeRewards(ds, 20)
	if out[0].Reward != 1 {
		t.Errorf("r0 = %v", out[0].Reward)
	}
	if out[1].Reward != 0.5 {
		t.Errorf("r1 = %v", out[1].Reward)
	}
	if out[2].Reward != 0 {
		t.Errorf("r2 = %v (clamp)", out[2].Reward)
	}
	// Original untouched.
	if ds[0].Reward != 0 || ds[1].Reward != -10 {
		t.Error("NormalizeRewards should not mutate its input")
	}
	for _, d := range out {
		if d.Reward < 0 || d.Reward > 1 {
			t.Errorf("normalized reward %v out of [0,1]", d.Reward)
		}
	}
}

func TestNormalizedWithinMaxPossible(t *testing.T) {
	g := newGen(t, 9)
	expl := learn.SimulateExploration(stats.NewRand(10), g.Generate(2000))
	norm := NormalizeRewards(expl, g.MaxPossibleDowntime())
	lo, hi := norm.RewardRange()
	if lo < 0 || hi > 1 {
		t.Errorf("normalized range [%v, %v]", lo, hi)
	}
	// Recoveries at ~0 downtime should push the top near 1.
	if hi < 0.9 {
		t.Errorf("top of range %v suspiciously low", hi)
	}
}

func TestOptimalExpectedDowntime(t *testing.T) {
	opt, err := OptimalExpectedDowntime(11, DefaultConfig(), 4000)
	if err != nil {
		t.Fatal(err)
	}
	if opt <= 0 || opt > 15 {
		t.Errorf("optimal downtime = %v, implausible", opt)
	}
	// The default (max wait) must be worse than optimal.
	g := newGen(t, 11)
	def := -g.Generate(4000).MeanReward(DefaultPolicy())
	if def <= opt {
		t.Errorf("default %v should exceed optimal %v", def, opt)
	}
}

func TestScaleByVMs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ScaleByVMs = true
	g, err := NewGenerator(stats.NewRand(12), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.Generate(1000)
	// Scaled rewards should have larger magnitude on average than
	// unscaled ones (VMs >= 1, often > 1).
	g2 := newGen(t, 12)
	ds2 := g2.Generate(1000)
	var scaled, plain stats.Welford
	for i := range ds {
		for _, r := range ds[i].Rewards {
			scaled.Add(-r)
		}
		for _, r := range ds2[i].Rewards {
			plain.Add(-r)
		}
	}
	if scaled.Mean() <= plain.Mean() {
		t.Errorf("VM scaling should inflate downtime cost: %v <= %v", scaled.Mean(), plain.Mean())
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := newGen(t, 42).Generate(100)
	b := newGen(t, 42).Generate(100)
	for i := range a {
		if a[i].Rewards[0] != b[i].Rewards[0] {
			t.Fatal("same seed should generate identical datasets")
		}
	}
}
