package rollout

import (
	"fmt"
	"math"
	"time"

	"repro/internal/abtest"
	"repro/internal/harvestd"
	"repro/internal/ope"
)

// Outcome is a gate evaluation's verdict.
type Outcome string

// Gate outcomes. OutcomeNone marks evaluations in a terminal stage.
const (
	OutcomePromote  Outcome = "promote"
	OutcomeHold     Outcome = "hold"
	OutcomeRollback Outcome = "rollback"
	OutcomeNone     Outcome = "none"
)

// GateCheck is one named guard inside a gate decision. OK means the check
// did not object to the current course; Detail is a human-readable account
// of the evidence, formatted deterministically (%g floats, no timestamps)
// so scripted runs yield byte-identical decision records.
type GateCheck struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
}

// GateArm is the per-policy evidence a decision was based on: the served
// estimate restated with the controller's own gate interval, plus the
// estimator-health diagnostics the rollback guards read. Deliberately free
// of anything worker- or wall-time-dependent.
type GateArm struct {
	Policy       string  `json:"policy"`
	N            int64   `json:"n"`
	Value        float64 `json:"value"`
	StdErr       float64 `json:"stderr"`
	Lo           float64 `json:"lo"`
	Hi           float64 `json:"hi"`
	ESSFraction  float64 `json:"ess_fraction"`
	ClipFraction float64 `json:"clip_fraction"`
}

// GateDecision is one machine-readable gate evaluation — the audit record
// that lets CI (or a reviewer) replay exactly why every promotion,
// hold, and rollback happened.
type GateDecision struct {
	// Seq numbers decisions from 1 in evaluation order.
	Seq int64 `json:"seq"`
	// TimeUnixMilli is the injected clock's time of the evaluation.
	TimeUnixMilli int64 `json:"time_unix_milli"`
	// Stage and Share are the state the gate evaluated in.
	Stage Stage   `json:"stage"`
	Share float64 `json:"share"`
	// Outcome is the verdict; Reason is the one-line justification (for a
	// hold, the first check that blocked promotion).
	Outcome Outcome `json:"outcome"`
	Reason  string  `json:"reason"`
	// NextStage/NextShare are set when the outcome changed the state.
	NextStage Stage   `json:"next_stage,omitempty"`
	NextShare float64 `json:"next_share,omitempty"`
	// Candidate and Baseline capture the evidence; Checks every guard.
	Candidate GateArm     `json:"candidate"`
	Baseline  GateArm     `json:"baseline"`
	Checks    []GateCheck `json:"checks"`
	// ActuateError records a failed share push (promotion is then withheld;
	// rollback proceeds regardless).
	ActuateError string `json:"actuate_error,omitempty"`
}

// StageTransition is one edge taken through the state machine.
type StageTransition struct {
	From          Stage   `json:"from"`
	To            Stage   `json:"to"`
	Share         float64 `json:"share"`
	AtPoll        int64   `json:"at_poll"`
	TimeUnixMilli int64   `json:"time_unix_milli"`
	Reason        string  `json:"reason"`
}

// EstimatorView is the (value, stderr) pair of one served estimator.
type EstimatorView struct {
	Value  float64
	StdErr float64
}

// selectEstimator picks the configured estimator out of a served estimate.
func selectEstimator(pe harvestd.PolicyEstimate, name string) EstimatorView {
	ev := pe.ClippedIPS
	if name == "ips" {
		ev = pe.IPS
	}
	return EstimatorView{Value: ev.Value, StdErr: ev.StdErr}
}

// armView assembles the decision-record view of one arm: the served
// estimate re-bounded with the controller's own gate interval (so the
// recorded Lo/Hi are exactly what the separation check compared) plus the
// health fractions. cfg's Delta and TermHi shape the interval.
func gateArm(cfg *Config, policy string, ev EstimatorView, n int64, dg harvestd.PolicyDiagnostics) GateArm {
	iv := ope.HighConfidenceInterval(ope.Estimate{Value: ev.Value, StdErr: ev.StdErr, N: int(n)}, cfg.TermHi, cfg.Delta)
	// Intersect with the a-priori term range: every per-datapoint estimator
	// term lies in [TermLo, TermHi], so the true value does too and the
	// intersection keeps coverage. This also bounds the n=0 interval (whose
	// concentration radius is infinite) — ±Inf is not representable in the
	// JSON decision record or the checkpoint.
	lo := math.Max(iv.Lo, cfg.TermLo)
	hi := math.Min(iv.Hi, cfg.TermHi)
	return GateArm{
		Policy: policy, N: n,
		Value: ev.Value, StdErr: ev.StdErr,
		Lo: lo, Hi: hi,
		ESSFraction:  dg.ESSFraction,
		ClipFraction: dg.ClipFraction,
	}
}

// gateInputs is everything evaluate needs, gathered under the controller
// lock. Keeping evaluate a pure function of this struct is what makes gate
// decisions benchmarkable and replayable in isolation.
type gateInputs struct {
	Poll         int64
	Now          time.Time
	Stage        Stage
	Share        float64
	ShareIdx     int
	Cand, Base   GateArm
	StageSamples int64         // candidate datapoints since entering this stage
	StaleFor     time.Duration // time since the candidate count last grew
	// Watermark is the harvest surface's pipeline watermark, when it serves
	// one (nil otherwise — the guard is then skipped entirely, keeping
	// decision records of watermark-less clients unchanged).
	Watermark *WatermarkInfo
	Seq       *abtest.Sequential
}

// better orients a comparison: is a better than b under the objective?
func better(obj Objective, a, b float64) bool {
	if obj == Minimize {
		return a < b
	}
	return a > b
}

// evaluate runs every guard and produces the decision, without side
// effects. Check order is fixed — health guards first (they can only roll
// back), then evidence guards — and the first failing rollback guard or
// the first unmet promotion requirement supplies the Reason, so identical
// inputs always produce identical records.
//
// Promotion demands agreement of two independent tests on the same sums:
// the per-arm empirical-Bernstein intervals must separate in the
// candidate's favor (the Thomas-style high-confidence OPE gate), and the
// anytime-valid sequential monitor must have decided for the candidate
// (valid at every peek, so polling each cycle never inflates the error).
// Regression is the mirror image — either test confirming the candidate
// worse triggers rollback; at full exposure only the health and regression
// guards run (there is nothing left to promote to).
func evaluate(cfg *Config, in gateInputs) GateDecision {
	d := GateDecision{
		TimeUnixMilli: in.Now.UnixMilli(),
		Stage:         in.Stage,
		Share:         in.Share,
		Candidate:     in.Cand,
		Baseline:      in.Base,
	}
	check := func(name string, ok bool, format string, args ...any) bool {
		d.Checks = append(d.Checks, GateCheck{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
		return ok
	}

	// --- Health guards: any failure rolls back. ---
	fresh := cfg.StaleAfter <= 0 || in.StaleFor < cfg.StaleAfter
	if !check("staleness", fresh, "no new candidate samples for %s (limit %s)",
		in.StaleFor, cfg.StaleAfter) {
		d.Outcome, d.Reason = OutcomeRollback, "estimates stale: "+d.Checks[len(d.Checks)-1].Detail
		return d
	}
	if in.Watermark != nil {
		// The staleness guard above watches sample counts from the outside;
		// the watermark guard reads the pipeline's own account of how old
		// the folds behind those estimates are. Age -1 means nothing folded
		// yet — min_samples holds in that case, no need to roll back.
		wmOK := cfg.StaleAfter <= 0 || in.Watermark.AgeSeconds < 0 ||
			in.Watermark.AgeSeconds < cfg.StaleAfter.Seconds()
		if !check("watermark", wmOK, "fold watermark age %gs (limit %s; seq %d, %d behind)",
			in.Watermark.AgeSeconds, cfg.StaleAfter, in.Watermark.Seq, in.Watermark.Behind) {
			d.Outcome, d.Reason = OutcomeRollback, "estimates stale: "+d.Checks[len(d.Checks)-1].Detail
			return d
		}
	}
	// ESS and clip fractions computed from fewer than a stage's worth of
	// samples are noise, not a health verdict (the first poll of a fresh
	// harvest can legitimately see ESS 0 when every record so far carried
	// zero candidate weight) — below MinStageSamples the health guards
	// pass and min_samples holds instead.
	warm := in.Cand.N >= cfg.MinStageSamples
	essOK := cfg.ESSFloor < 0 || !warm || in.Cand.ESSFraction >= cfg.ESSFloor
	if !check("ess", essOK, "candidate ESS fraction %g (floor %g)",
		in.Cand.ESSFraction, cfg.ESSFloor) {
		d.Outcome, d.Reason = OutcomeRollback, "estimator health collapsed: "+d.Checks[len(d.Checks)-1].Detail
		return d
	}
	clipOK := cfg.ClipCeiling <= 0 || !warm || in.Cand.ClipFraction <= cfg.ClipCeiling
	if !check("clip", clipOK, "candidate clip fraction %g (ceiling %g)",
		in.Cand.ClipFraction, cfg.ClipCeiling) {
		d.Outcome, d.Reason = OutcomeRollback, "estimator health collapsed: "+d.Checks[len(d.Checks)-1].Detail
		return d
	}

	// --- Evidence guards. ---
	ebSep := in.Cand.N > 0 && in.Base.N > 0 && func() bool {
		if cfg.Objective == Minimize {
			return in.Cand.Hi < in.Base.Lo
		}
		return in.Cand.Lo > in.Base.Hi
	}()
	ebRegress := in.Cand.N > 0 && in.Base.N > 0 && func() bool {
		if cfg.Objective == Minimize {
			return in.Cand.Lo > in.Base.Hi
		}
		return in.Cand.Hi < in.Base.Lo
	}()
	ebDetail := fmt.Sprintf("candidate [%g, %g] vs baseline [%g, %g] (objective %s)",
		in.Cand.Lo, in.Cand.Hi, in.Base.Lo, in.Base.Hi, cfg.Objective)
	check("eb_separation", ebSep, "%s", ebDetail)

	winner, decided := in.Seq.Decided()
	// The monitor's winner is the higher-mean arm (arm 1 = candidate);
	// under Minimize the lower-mean arm is the better one.
	seqForCand := decided && ((cfg.Objective == Maximize) == (winner == 1))
	n0, n1 := in.Seq.N()
	check("sequential", seqForCand,
		"decided=%t winner=arm%d n0=%d n1=%d", decided, winner, n0, n1)

	if ebRegress || (decided && !seqForCand) {
		d.Outcome = OutcomeRollback
		switch {
		case ebRegress && decided && !seqForCand:
			d.Reason = "regression confirmed by EB intervals and sequential test"
		case ebRegress:
			d.Reason = "regression: EB intervals separated against the candidate"
		default:
			d.Reason = "regression: sequential test decided against the candidate"
		}
		return d
	}

	if in.Stage == StageFull {
		d.Outcome, d.Reason = OutcomeHold, "at full exposure; monitoring for regression"
		return d
	}

	enough := in.StageSamples >= cfg.MinStageSamples
	check("min_samples", enough, "%d/%d new candidate samples this stage",
		in.StageSamples, cfg.MinStageSamples)

	switch {
	case !enough:
		d.Outcome, d.Reason = OutcomeHold, "insufficient evidence: "+d.Checks[len(d.Checks)-1].Detail
	case !ebSep:
		d.Outcome, d.Reason = OutcomeHold, "EB intervals overlap: "+ebDetail
	case !seqForCand:
		d.Outcome, d.Reason = OutcomeHold, "sequential test undecided"
	default:
		d.Outcome = OutcomePromote
		d.Reason = fmt.Sprintf("EB separation and sequential test agree: candidate better (objective %s)", cfg.Objective)
	}
	return d
}
