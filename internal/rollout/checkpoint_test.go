package rollout

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// feedScript drives one scripted frame + step against a controller.
type simFrame struct {
	candMean, baseMean float64
}

func playFrames(t *testing.T, f *fakeHarvest, c *Controller, clock *obs.FixedClock, frames []simFrame) {
	t.Helper()
	for _, fr := range frames {
		f.feed(300, fr.candMean, 0.05, 300, fr.baseMean, 0.05)
		clock.Advance(2 * time.Second)
		if _, err := c.Step(context.Background()); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
}

// TestCheckpointResumeMidCanary kills a controller mid-canary and restarts
// it from its checkpoint: the resumed /status and /gates must be
// byte-identical to the pre-kill render, and the resumed run must keep
// making the same decisions an uninterrupted controller makes on the same
// remaining frames.
func TestCheckpointResumeMidCanary(t *testing.T) {
	script := []simFrame{
		{0.8, 0.5}, // shadow -> canary 1%
		{0.5, 0.5}, // hold (flat canary data)
		{0.8, 0.5}, // hold (monitor not yet re-separated after the flat batch)
		{0.8, 0.5}, // canary 1% -> 5%
		{0.8, 0.5}, // canary 5% -> 25%
	}
	ckpt := filepath.Join(t.TempDir(), "rollout.ckpt")

	// Interrupted run: two frames, kill, restart, two more frames.
	fI := newFakeHarvest(t, 4)
	clockI := &obs.FixedClock{T: time.Unix(1700000000, 0).UTC()}
	cI := simController(t, fI, clockI, nil, func(cfg *Config) { cfg.CheckpointPath = ckpt })
	playFrames(t, fI, cI, clockI, script[:2])
	if got := cI.Stage(); got != StageCanary {
		t.Fatalf("pre-kill stage %s, want %s", got, StageCanary)
	}
	statusBefore := getBody(t, cI.URL()+"/status")
	gatesBefore := getBody(t, cI.URL()+"/gates")
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cI.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	cR := simController(t, fI, clockI, nil, func(cfg *Config) { cfg.CheckpointPath = ckpt })
	if got := cR.Stage(); got != StageCanary {
		t.Fatalf("resumed stage %s, want %s", got, StageCanary)
	}
	if got := getBody(t, cR.URL()+"/status"); !bytes.Equal(got, statusBefore) {
		t.Fatalf("resumed /status differs:\n%s\nvs\n%s", got, statusBefore)
	}
	if got := getBody(t, cR.URL()+"/gates"); !bytes.Equal(got, gatesBefore) {
		t.Fatalf("resumed /gates differs:\n%s\nvs\n%s", got, gatesBefore)
	}
	playFrames(t, fI, cR, clockI, script[2:])
	gatesResumed := getBody(t, cR.URL()+"/gates")

	// Uninterrupted control run over the identical script.
	fU := newFakeHarvest(t, 4)
	clockU := &obs.FixedClock{T: time.Unix(1700000000, 0).UTC()}
	cU := simController(t, fU, clockU, nil, nil)
	playFrames(t, fU, cU, clockU, script)
	gatesUninterrupted := getBody(t, cU.URL()+"/gates")

	if !bytes.Equal(gatesResumed, gatesUninterrupted) {
		t.Fatalf("kill/resume diverged from uninterrupted run:\n%s\nvs\n%s",
			gatesResumed, gatesUninterrupted)
	}
	if got := cR.Stage(); got != StageCanary || cR.Share() != 0.25 {
		t.Fatalf("resumed run ended at %s/%g, want canary/0.25", got, cR.Share())
	}
}

// TestCheckpointCorruptRejected ensures a mangled checkpoint refuses to
// start the controller, with the path in the error — never a silent cold
// start that could re-promote a rolled-back candidate.
func TestCheckpointCorruptRejected(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "rollout.ckpt")
	if err := os.WriteFile(ckpt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	f := newFakeHarvest(t, 4)
	c, err := New(Config{
		Candidate: "cand", Baseline: "base",
		Harvest:        &HTTPHarvest{BaseURL: f.srv.URL},
		CheckpointPath: ckpt,
		Clock:          &obs.FixedClock{T: time.Unix(1700000000, 0).UTC()},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	err = c.Start(context.Background())
	if err == nil {
		sctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = c.Shutdown(sctx)
		t.Fatal("Start accepted a corrupt checkpoint")
	}
	if !strings.Contains(err.Error(), "corrupt checkpoint") || !strings.Contains(err.Error(), ckpt) {
		t.Fatalf("error %q lacks corruption context and path", err)
	}
}

// TestCheckpointVersionAndIdentityRejected covers the two other refusal
// paths: a future schema version and a checkpoint for different policies.
func TestCheckpointVersionAndIdentityRejected(t *testing.T) {
	dir := t.TempDir()
	f := newFakeHarvest(t, 4)
	newC := func(ckpt string) *Controller {
		c, err := New(Config{
			Candidate: "cand", Baseline: "base",
			Harvest:        &HTTPHarvest{BaseURL: f.srv.URL},
			CheckpointPath: ckpt,
			Clock:          &obs.FixedClock{T: time.Unix(1700000000, 0).UTC()},
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return c
	}
	write := func(name string, ck Checkpoint) string {
		path := filepath.Join(dir, name)
		blob, err := json.Marshal(ck)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	verPath := write("version.ckpt", Checkpoint{Version: 99, Candidate: "cand", Baseline: "base", Stage: StageShadow})
	if err := newC(verPath).Start(context.Background()); err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("version mismatch error %v", err)
	}

	idPath := write("identity.ckpt", Checkpoint{Version: CheckpointVersion, Candidate: "other", Baseline: "base", Stage: StageShadow})
	if err := newC(idPath).Start(context.Background()); err == nil || !strings.Contains(err.Error(), `tracks other vs base`) {
		t.Fatalf("identity mismatch error %v", err)
	}

	stagePath := write("stage.ckpt", Checkpoint{Version: CheckpointVersion, Candidate: "cand", Baseline: "base", Stage: Stage("sideways")})
	if err := newC(stagePath).Start(context.Background()); err == nil || !strings.Contains(err.Error(), `unknown stage "sideways"`) {
		t.Fatalf("unknown stage error %v", err)
	}

	seqPath := write("seq.ckpt", Checkpoint{Version: CheckpointVersion, Candidate: "cand", Baseline: "base",
		Stage: StageCanary, ShareIdx: 7})
	if err := newC(seqPath).Start(context.Background()); err == nil || !strings.Contains(err.Error(), "canary index 7") {
		t.Fatalf("canary index error %v", err)
	}
}

// TestCheckpointAtomicOverwrite writes checkpoints repeatedly and checks
// the published file always parses — the temp-file + rename protocol never
// exposes a torn write.
func TestCheckpointAtomicOverwrite(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "rollout.ckpt")
	f := newFakeHarvest(t, 4)
	clock := &obs.FixedClock{T: time.Unix(1700000000, 0).UTC()}
	c := simController(t, f, clock, nil, func(cfg *Config) { cfg.CheckpointPath = ckpt })
	for i := 0; i < 5; i++ {
		f.feed(300, 0.8, 0.05, 300, 0.5, 0.05)
		clock.Advance(2 * time.Second)
		if _, err := c.Step(context.Background()); err != nil {
			t.Fatalf("Step: %v", err)
		}
		if err := c.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint %d: %v", i, err)
		}
		blob, err := os.ReadFile(ckpt)
		if err != nil {
			t.Fatal(err)
		}
		var ck Checkpoint
		if err := json.Unmarshal(blob, &ck); err != nil {
			t.Fatalf("checkpoint %d unparseable: %v", i, err)
		}
		if ck.Version != CheckpointVersion || ck.Polls != int64(i+1) {
			t.Fatalf("checkpoint %d: version %d polls %d", i, ck.Version, ck.Polls)
		}
	}
}
