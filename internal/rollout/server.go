package rollout

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/abtest"
)

// Status is the /status payload: the controller's full current view. Under
// a fixed clock it is a pure function of the gate history, which is what
// the checkpoint/resume tests pin — a restarted controller must render the
// byte-identical status it would have rendered uninterrupted.
type Status struct {
	Candidate    string                 `json:"candidate"`
	Baseline     string                 `json:"baseline"`
	Objective    Objective              `json:"objective"`
	Estimator    string                 `json:"estimator"`
	Stage        Stage                  `json:"stage"`
	Share        float64                `json:"share"`
	CanaryShares []float64              `json:"canary_shares"`
	Polls        int64                  `json:"polls"`
	Gates        int64                  `json:"gates"`
	StageSamples int64                  `json:"stage_samples"`
	CandidateN   int64                  `json:"candidate_n"`
	BaselineN    int64                  `json:"baseline_n"`
	Sequential   abtest.SequentialState `json:"sequential"`
	LastOutcome  Outcome                `json:"last_outcome,omitempty"`
	LastReason   string                 `json:"last_reason,omitempty"`
	Transitions  []StageTransition      `json:"transitions"`
}

// StatusNow assembles the current Status.
func (c *Controller) StatusNow() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Candidate:    c.cfg.Candidate,
		Baseline:     c.cfg.Baseline,
		Objective:    c.cfg.Objective,
		Estimator:    c.cfg.Estimator,
		Stage:        c.stage,
		Share:        c.share(),
		CanaryShares: append([]float64(nil), c.cfg.CanaryShares...),
		Polls:        c.polls,
		Gates:        c.gateSeq,
		StageSamples: c.lastCand.N - c.stageEnteredN,
		CandidateN:   c.lastCand.N,
		BaselineN:    c.lastBase.N,
		Sequential:   c.seq.State(),
		Transitions:  append([]StageTransition{}, c.transitions...),
	}
	if n := len(c.gates); n > 0 {
		st.LastOutcome = c.gates[n-1].Outcome
		st.LastReason = c.gates[n-1].Reason
	}
	return st
}

// handler builds the controller's stdlib-only HTTP API:
//
//	GET /healthz  liveness + stage + uptime
//	GET /status   full controller state (see Status)
//	GET /gates    every retained gate decision, evaluation order
//	GET /history  stage transitions taken, oldest first
//	GET /metrics  Prometheus text via the obs registry
func (c *Controller) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", getOnly(c.handleHealthz))
	mux.HandleFunc("/status", getOnly(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.StatusNow())
	}))
	mux.HandleFunc("/gates", getOnly(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Gates())
	}))
	mux.HandleFunc("/history", getOnly(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Transitions())
	}))
	mux.HandleFunc("/metrics", getOnly(func(w http.ResponseWriter, r *http.Request) {
		c.obsReg.Handler().ServeHTTP(w, r)
	}))
	return mux
}

// getOnly rejects mutating methods on the read-only API with 405, matching
// harvestd's convention.
func getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

func (c *Controller) handleHealthz(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	stage := c.stage
	uptime := c.cfg.Clock.Now().Sub(c.start)
	c.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok stage=%s uptime=%s\n", stage, uptime.Round(time.Millisecond))
}

// writeJSON mirrors harvestd's encoder settings so every JSON surface in
// the project renders identically (one-space indent, trailing newline).
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}
