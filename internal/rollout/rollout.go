// Package rollout closes the paper's loop: it turns harvestd's
// counterfactual estimates into guarded, automatic production policy
// changes — the SAYER step that follows "Harvesting Randomness" (deploy
// the policy the off-policy estimates picked, behind guardrails).
//
// A Controller watches one candidate policy against an incumbent baseline
// on a harvestd (or harvestagg) /estimates + /diagnostics surface and
// drives the candidate through a staged state machine:
//
//	shadow ──▶ canary[0] ──▶ … ──▶ canary[k-1] ──▶ full
//	   │           │                    │            │
//	   └───────────┴───── rollback ─────┴────────────┘
//
// In shadow the candidate receives no traffic (share 0) and is evaluated
// purely counterfactually from the incumbent's harvested randomness — the
// paper's core claim that exploration data already collected evaluates the
// candidate at 100%. Each canary stage deploys the candidate on an epsilon
// of traffic via a policy blend; full deploys it everywhere. Every
// promotion is gated on two independent statistical tests:
//
//   - empirical-Bernstein interval separation (ope.HighConfidenceInterval,
//     the Thomas-et-al high-confidence OPE bound §5 points at), and
//   - the anytime-valid sequential monitor (abtest.Sequential in
//     empirical-Bernstein mode), fed batch increments of the same
//     estimator sums so it sees exactly the per-datapoint stream.
//
// Estimator-health collapse (ESS floor, clip-fraction ceiling, staleness)
// or a statistically confirmed regression triggers automatic rollback from
// any stage. Every evaluation emits a machine-readable GateDecision, so an
// auditor (or CI) can replay exactly why each promotion happened — the
// GrowthHacker-style decision record.
//
// All time flows through an injected obs.Clock and all inputs arrive
// through the HarvestClient interface, so the whole control loop is
// deterministic under test: the same scripted estimate sequence always
// yields byte-identical gate history, independent of wall time and of the
// harvesting daemon's worker count.
package rollout

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/abtest"
	"repro/internal/obs"
)

// Stage is one state of the rollout state machine.
type Stage string

// The rollout stages. RolledBack is terminal; Full is monitored forever
// (a regression at full exposure still rolls back).
const (
	StageShadow     Stage = "shadow"
	StageCanary     Stage = "canary"
	StageFull       Stage = "full"
	StageRolledBack Stage = "rolledback"
)

// Objective orients the gates: whether a larger estimated value is better
// (paper-style rewards) or worse (latencies, error rates).
type Objective string

// The two gate orientations.
const (
	Maximize Objective = "max"
	Minimize Objective = "min"
)

// Config tunes a Controller.
type Config struct {
	// Candidate and Baseline name the two policies on the harvest surface.
	Candidate, Baseline string
	// Objective orients comparisons; default Maximize.
	Objective Objective
	// Estimator selects which served estimator gates read: "clipped_ips"
	// (default; bounded terms keep the EB intervals honest) or "ips".
	Estimator string
	// Delta is the per-gate interval failure probability. Default 0.05.
	Delta float64
	// CanaryShares is the epsilon ramp, strictly increasing in (0, 1).
	// Default {0.01, 0.05, 0.25}.
	CanaryShares []float64
	// MinStageSamples is the minimum number of new candidate datapoints a
	// stage must observe before it may promote. Default 200.
	MinStageSamples int64
	// TermLo/TermHi bound the per-datapoint estimator terms (importance
	// weight × reward; for clipped IPS, at most clip × max reward). They
	// feed the sequential monitor's validity range and the Hoeffding side
	// of the EB interval. TermLo must be ≥ 0. Default [0, 1].
	TermLo, TermHi float64
	// ESSFloor rolls back when the candidate's effective-sample-size
	// fraction drops below it. Default 0.05; negative disables.
	ESSFloor float64
	// ClipCeiling rolls back when the candidate's clip fraction exceeds
	// it. Default 0.25; <= 0 disables (set 1 to keep the check trivially
	// green).
	ClipCeiling float64
	// StaleAfter rolls back when no new candidate samples arrive for this
	// long — an estimate frozen in time cannot guard a live canary.
	// Default 5m; <= 0 disables.
	StaleAfter time.Duration
	// MaxGates caps the retained gate-decision history (oldest dropped).
	// Default 1024.
	MaxGates int
	// PollInterval is the Run loop's cadence. Default 2s. Tests drive
	// Step directly and never start the loop.
	PollInterval time.Duration
	// Addr is the controller's HTTP listen address; empty disables the
	// API. "127.0.0.1:0" picks a free port.
	Addr string
	// CheckpointPath enables atomic checkpoint/resume; empty disables.
	CheckpointPath string
	// CheckpointInterval is the timer between checkpoints. Default 30s.
	CheckpointInterval time.Duration
	// Harvest supplies estimates and diagnostics (required).
	Harvest HarvestClient
	// Actuator receives the chosen share after every transition; nil
	// means observe-only (gate decisions are still recorded).
	Actuator Actuator
	// Clock supplies timestamps; default wall clock. Tests inject
	// obs.FixedClock for byte-stable decisions.
	Clock obs.Clock
	// Tracer receives poll/gate spans; nil disables tracing.
	Tracer *obs.Tracer
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() error {
	if c.Candidate == "" || c.Baseline == "" {
		return fmt.Errorf("rollout: candidate and baseline policy names required")
	}
	if c.Candidate == c.Baseline {
		return fmt.Errorf("rollout: candidate and baseline are both %q", c.Candidate)
	}
	if c.Harvest == nil {
		return fmt.Errorf("rollout: nil harvest client")
	}
	switch c.Objective {
	case "":
		c.Objective = Maximize
	case Maximize, Minimize:
	default:
		return fmt.Errorf("rollout: objective %q (want %q or %q)", c.Objective, Maximize, Minimize)
	}
	switch c.Estimator {
	case "":
		c.Estimator = "clipped_ips"
	case "clipped_ips", "ips":
	default:
		return fmt.Errorf("rollout: estimator %q (want clipped_ips or ips)", c.Estimator)
	}
	if c.Delta == 0 {
		c.Delta = 0.05
	}
	if c.Delta <= 0 || c.Delta >= 1 {
		return fmt.Errorf("rollout: delta %v out of (0,1)", c.Delta)
	}
	if len(c.CanaryShares) == 0 {
		c.CanaryShares = []float64{0.01, 0.05, 0.25}
	}
	prev := 0.0
	for _, s := range c.CanaryShares {
		if s <= prev || s >= 1 {
			return fmt.Errorf("rollout: canary shares %v must be strictly increasing in (0,1)", c.CanaryShares)
		}
		prev = s
	}
	if c.MinStageSamples <= 0 {
		c.MinStageSamples = 200
	}
	if c.TermLo == 0 && c.TermHi == 0 {
		c.TermHi = 1
	}
	if c.TermLo < 0 || c.TermHi <= c.TermLo {
		return fmt.Errorf("rollout: term range [%v, %v] (need 0 <= lo < hi)", c.TermLo, c.TermHi)
	}
	if c.ESSFloor == 0 {
		c.ESSFloor = 0.05
	}
	if c.ClipCeiling == 0 {
		c.ClipCeiling = 0.25
	}
	if c.StaleAfter == 0 {
		c.StaleAfter = 5 * time.Minute
	}
	if c.MaxGates <= 0 {
		c.MaxGates = 1024
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 2 * time.Second
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = 30 * time.Second
	}
	if c.Clock == nil {
		c.Clock = obs.WallClock()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// armTotals is one arm's last-seen estimator totals, kept so each poll can
// feed the sequential monitor exactly the increment of the underlying sums.
type armTotals struct {
	N     int64
	Sum   float64 // Σ term            (= value · n)
	SumSq float64 // Σ term²           (recovered from stderr)
}

// Controller drives one candidate through the rollout state machine.
type Controller struct {
	cfg Config

	mu               sync.Mutex
	stage            Stage
	shareIdx         int // index into CanaryShares while in StageCanary
	polls            int64
	gateSeq          int64
	stageEnteredPoll int64
	stageEnteredN    int64 // candidate N when the stage was entered
	lastProgress     time.Time
	lastCand         armTotals
	lastBase         armTotals
	seq              *abtest.Sequential
	gates            []GateDecision
	transitions      []StageTransition

	start  time.Time
	obsReg *obs.Registry
	met    *metrics
	root   *obs.Span

	runCtx    context.Context
	runCancel context.CancelFunc
	loopDone  chan struct{}
	ckptDone  chan struct{}
	running   bool

	ln  net.Listener
	srv *http.Server
}

// New builds a controller. Call Start to begin polling (or drive Step
// directly in tests).
func New(cfg Config) (*Controller, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	seq, err := abtest.NewSequentialEB(cfg.TermLo, cfg.TermHi, cfg.Delta)
	if err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg, stage: StageShadow, seq: seq}
	c.initMetrics()
	return c, nil
}

// share maps the current stage to the candidate's traffic share.
func (c *Controller) share() float64 {
	switch c.stage {
	case StageCanary:
		return c.cfg.CanaryShares[c.shareIdx]
	case StageFull:
		return 1
	default: // shadow, rolledback
		return 0
	}
}

// Start restores any checkpoint, pushes the current share to the actuator,
// and launches the poll loop, checkpoint timer, and HTTP API. The
// controller runs until Shutdown.
func (c *Controller) Start(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.running {
		return fmt.Errorf("rollout: already started")
	}
	if c.cfg.CheckpointPath != "" {
		err := c.loadCheckpointLocked()
		switch {
		case err == nil:
			c.cfg.Logf("rollout: resumed stage=%s share=%g polls=%d from %s",
				c.stage, c.share(), c.polls, c.cfg.CheckpointPath)
		case isNotExist(err):
			// First run: nothing to resume.
		default:
			return fmt.Errorf("rollout: loading checkpoint: %w", err)
		}
	}
	if c.cfg.Addr != "" {
		ln, err := net.Listen("tcp", c.cfg.Addr)
		if err != nil {
			return fmt.Errorf("rollout: listen %s: %w", c.cfg.Addr, err)
		}
		c.ln = ln
	}

	c.start = c.cfg.Clock.Now()
	if c.lastProgress.IsZero() {
		c.lastProgress = c.start
	}
	c.root = c.cfg.Tracer.Start("rollout/run", nil, map[string]any{
		"candidate": c.cfg.Candidate, "baseline": c.cfg.Baseline,
	})
	c.runCtx, c.runCancel = context.WithCancel(ctx)

	// Sync the target with the controller's view of the world before any
	// gate fires: a restart mid-canary must re-assert the canary share.
	if c.cfg.Actuator != nil {
		if err := c.cfg.Actuator.SetShare(c.runCtx, c.share()); err != nil {
			c.cfg.Logf("rollout: initial actuation failed: %v", err)
			c.met.actuateErrors.Inc()
		}
	}

	c.loopDone = make(chan struct{})
	go c.runLoop()

	c.ckptDone = make(chan struct{})
	if c.cfg.CheckpointPath != "" {
		go c.checkpointLoop()
	} else {
		close(c.ckptDone)
	}

	if c.ln != nil {
		c.srv = &http.Server{Handler: c.handler()}
		go func(srv *http.Server, ln net.Listener) { _ = srv.Serve(ln) }(c.srv, c.ln)
		c.cfg.Logf("rollout: serving on http://%s", c.ln.Addr())
	}
	c.running = true
	return nil
}

// Addr returns the API's host:port (empty when disabled or not started).
func (c *Controller) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// URL returns the API's base URL (after Start).
func (c *Controller) URL() string { return "http://" + c.Addr() }

// Stage returns the current stage.
func (c *Controller) Stage() Stage {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stage
}

// Share returns the candidate's current traffic share.
func (c *Controller) Share() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.share()
}

// runLoop polls on the configured interval until shutdown. Terminal stages
// stop the clock: a rolled-back controller keeps serving its decision
// history but stops polling.
func (c *Controller) runLoop() {
	defer close(c.loopDone)
	t := time.NewTicker(c.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if c.Stage() == StageRolledBack {
				continue
			}
			if _, err := c.Step(c.runCtx); err != nil && c.runCtx.Err() == nil {
				c.cfg.Logf("rollout: poll failed: %v", err)
			}
		case <-c.runCtx.Done():
			return
		}
	}
}

// checkpointLoop writes checkpoints on a timer until shutdown.
func (c *Controller) checkpointLoop() {
	defer close(c.ckptDone)
	t := time.NewTicker(c.cfg.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := c.Checkpoint(); err != nil {
				c.cfg.Logf("rollout: checkpoint failed: %v", err)
			}
		case <-c.runCtx.Done():
			return
		}
	}
}

// Step performs one full control cycle: fetch estimates and diagnostics,
// fold the increments into the sequential monitor, evaluate every gate,
// apply the resulting transition, actuate the new share, and record the
// decision. It is the unit the deterministic scenario tests drive.
func (c *Controller) Step(ctx context.Context) (GateDecision, error) {
	sp := c.cfg.Tracer.Start("rollout/step", c.root, nil)
	defer sp.End()

	cand, base, diag, err := fetchArms(ctx, c.cfg.Harvest, c.cfg.Candidate, c.cfg.Baseline)
	if err != nil {
		c.met.pollErrors.Inc()
		return GateDecision{}, err
	}
	// Pipeline watermarks are advisory evidence: fetched when the client
	// offers them, and a fetch failure degrades to "no watermark" rather
	// than aborting the cycle (the staleness guard still protects us).
	var wm *WatermarkInfo
	if fc, ok := c.cfg.Harvest.(FreshnessClient); ok {
		var werr error
		wm, werr = fc.Freshness(ctx)
		if werr != nil {
			c.cfg.Logf("rollout: freshness poll failed: %v", werr)
			wm = nil
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stage == StageRolledBack {
		return GateDecision{Stage: StageRolledBack, Outcome: OutcomeNone,
			Reason: "terminal stage: rollout was rolled back"}, nil
	}
	now := c.cfg.Clock.Now()
	if c.lastProgress.IsZero() {
		// First cycle ever (manual stepping without Start): the staleness
		// window opens now, not at the epoch.
		c.lastProgress = now
	}
	c.polls++
	c.met.polls.Inc()

	candTot := totalsOf(selectEstimator(cand, c.cfg.Estimator), cand.N)
	baseTot := totalsOf(selectEstimator(base, c.cfg.Estimator), base.N)

	// Fold the per-arm increments into the anytime monitor. The monitor's
	// state is (sum, sumsq, count), so batch folding reproduces exactly the
	// state it would have reached seeing every datapoint individually.
	if err := c.foldIncrement(0, c.lastBase, baseTot); err != nil {
		c.met.seqRejects.Inc()
		c.cfg.Logf("rollout: baseline increment rejected: %v", err)
	}
	if err := c.foldIncrement(1, c.lastCand, candTot); err != nil {
		c.met.seqRejects.Inc()
		c.cfg.Logf("rollout: candidate increment rejected: %v", err)
	}
	if candTot.N > c.lastCand.N {
		c.lastProgress = now
	}
	c.lastCand, c.lastBase = candTot, baseTot

	in := gateInputs{
		Poll:         c.polls,
		Now:          now,
		Stage:        c.stage,
		Share:        c.share(),
		ShareIdx:     c.shareIdx,
		Cand:         gateArm(&c.cfg, c.cfg.Candidate, selectEstimator(cand, c.cfg.Estimator), cand.N, diagOf(diag, c.cfg.Candidate)),
		Base:         gateArm(&c.cfg, c.cfg.Baseline, selectEstimator(base, c.cfg.Estimator), base.N, diagOf(diag, c.cfg.Baseline)),
		StageSamples: candTot.N - c.stageEnteredN,
		StaleFor:     now.Sub(c.lastProgress),
		Watermark:    wm,
		Seq:          c.seq,
	}
	d := evaluate(&c.cfg, in)
	c.gateSeq++
	d.Seq = c.gateSeq
	c.apply(&d, now)
	c.recordLocked(d)
	sp.SetAttr("outcome", string(d.Outcome))
	return d, nil
}

// foldIncrement feeds one arm's estimator-sum increment to the monitor.
// Regressions in totals (a harvestd restart from an older checkpoint) skip
// the fold rather than fabricate negative batches.
func (c *Controller) foldIncrement(arm int, prev, cur armTotals) error {
	dn := cur.N - prev.N
	if dn <= 0 {
		return nil
	}
	dSum := cur.Sum - prev.Sum
	dSumSq := cur.SumSq - prev.SumSq
	if dSumSq < 0 {
		dSumSq = 0
	}
	return c.seq.AddBatch(arm, int(dn), dSum, dSumSq)
}

// apply executes a decision's transition under c.mu: update the state
// machine, reset per-stage accounting, and push the new share to the
// actuator. Promotion is withheld (downgraded to hold) if actuation fails —
// the controller must never believe a canary is serving traffic it could
// not start; rollback transitions always commit, because the safest
// recorded state after a failed rollback actuation is still "rolled back".
func (c *Controller) apply(d *GateDecision, now time.Time) {
	if d.Outcome != OutcomePromote && d.Outcome != OutcomeRollback {
		return
	}
	nextStage, nextIdx := c.stage, c.shareIdx
	if d.Outcome == OutcomePromote {
		switch c.stage {
		case StageShadow:
			nextStage, nextIdx = StageCanary, 0
		case StageCanary:
			if c.shareIdx+1 < len(c.cfg.CanaryShares) {
				nextIdx = c.shareIdx + 1
			} else {
				nextStage = StageFull
			}
		}
	} else {
		nextStage = StageRolledBack
	}
	nextShare := 0.0
	switch nextStage {
	case StageCanary:
		nextShare = c.cfg.CanaryShares[nextIdx]
	case StageFull:
		nextShare = 1
	}

	if c.cfg.Actuator != nil {
		if err := c.cfg.Actuator.SetShare(c.runCtxOrBackground(), nextShare); err != nil {
			c.met.actuateErrors.Inc()
			d.ActuateError = err.Error()
			if d.Outcome == OutcomePromote {
				d.Outcome = OutcomeHold
				d.Reason = fmt.Sprintf("promotion withheld: actuation failed: %v", err)
				return
			}
		}
	}

	from := c.stage
	c.stage, c.shareIdx = nextStage, nextIdx
	c.stageEnteredPoll = c.polls
	c.stageEnteredN = c.lastCand.N
	// Each gate demands fresh evidence at the new exposure level: the blend
	// changes the logged propensities, so carrying over the monitor would
	// mix regimes.
	c.seq, _ = abtest.NewSequentialEB(c.cfg.TermLo, c.cfg.TermHi, c.cfg.Delta)
	c.transitions = append(c.transitions, StageTransition{
		From: from, To: nextStage, Share: nextShare,
		AtPoll: c.polls, TimeUnixMilli: now.UnixMilli(), Reason: d.Reason,
	})
	d.NextStage, d.NextShare = nextStage, nextShare
	if d.Outcome == OutcomePromote {
		c.met.promotions.Inc()
	} else {
		c.met.rollbacks.Inc()
	}
	c.cfg.Logf("rollout: %s: %s -> %s (share %g): %s", d.Outcome, from, nextStage, nextShare, d.Reason)
}

// runCtxOrBackground returns the run context when the loop is live, or a
// background context when Step is driven manually before Start.
func (c *Controller) runCtxOrBackground() context.Context {
	if c.runCtx != nil {
		return c.runCtx
	}
	return context.Background()
}

// recordLocked appends a decision to the capped gate history.
func (c *Controller) recordLocked(d GateDecision) {
	c.gates = append(c.gates, d)
	if over := len(c.gates) - c.cfg.MaxGates; over > 0 {
		c.gates = append(c.gates[:0], c.gates[over:]...)
	}
	switch d.Outcome {
	case OutcomeHold:
		c.met.holds.Inc()
	}
	c.met.setStage(c.stage, c.share())
}

// totalsOf recovers running sums from a served (value, stderr, n) triple:
// sum = v·n and, since stderr² = var/n with var over n−1, the term sum of
// squares is stderr²·n·(n−1) + n·v². This is the inverse of the estimate
// derivation in harvestd, so the monitor sees the daemon's exact sums.
func totalsOf(ev EstimatorView, n int64) armTotals {
	if n <= 0 {
		return armTotals{}
	}
	nf := float64(n)
	v := ev.Value
	sumSq := ev.StdErr*ev.StdErr*nf*(nf-1) + nf*v*v
	if math.IsNaN(sumSq) || sumSq < 0 {
		sumSq = nf * v * v
	}
	return armTotals{N: n, Sum: v * nf, SumSq: sumSq}
}

// Gates returns a copy of the retained gate decisions.
func (c *Controller) Gates() []GateDecision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]GateDecision(nil), c.gates...)
}

// Transitions returns a copy of the stage-transition history.
func (c *Controller) Transitions() []StageTransition {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]StageTransition(nil), c.transitions...)
}

// Shutdown stops the loops, writes a final checkpoint, and closes the API.
func (c *Controller) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	if !c.running {
		c.mu.Unlock()
		return nil
	}
	c.running = false
	cancel := c.runCancel
	c.mu.Unlock()

	cancel()
	<-c.loopDone
	<-c.ckptDone
	var srvErr error
	if c.srv != nil {
		srvErr = c.srv.Shutdown(ctx)
	}
	var ckptErr error
	if c.cfg.CheckpointPath != "" {
		ckptErr = c.Checkpoint()
	}
	c.root.End()
	if ckptErr != nil {
		return fmt.Errorf("rollout: final checkpoint: %w", ckptErr)
	}
	return srvErr
}
