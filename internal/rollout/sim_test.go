package rollout

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harvestd"
	"repro/internal/obs"
	"repro/internal/ope"
)

// simArm accumulates one policy's scripted estimator stream: the test
// appends batches of (count, mean, sd) and the fake harvestd serves the
// cumulative (value, stderr, n) exactly as the real daemon derives them
// from its running sums — so the controller's sum-recovery inversion is
// exercised end to end.
type simArm struct {
	n          int64
	sum, sumSq float64
	essFrac    float64
	clipFrac   float64
}

// addBatch appends dn synthetic observations with the given mean and
// standard deviation.
func (a *simArm) addBatch(dn int64, mean, sd float64) {
	a.n += dn
	a.sum += mean * float64(dn)
	a.sumSq += float64(dn) * (sd*sd + mean*mean)
}

// estimate renders the served (value, stderr) pair from the running sums,
// mirroring harvestd's meanValue derivation.
func (a *simArm) estimate() (value, stderr float64) {
	if a.n == 0 {
		return 0, 0
	}
	nf := float64(a.n)
	value = a.sum / nf
	if a.n > 1 {
		v := (a.sumSq - nf*value*value) / (nf - 1)
		if v < 0 {
			v = 0
		}
		stderr = math.Sqrt(v / nf)
	}
	return value, stderr
}

// fakeHarvest is the scripted harvestd: an httptest server whose
// /estimates and /diagnostics replay whatever the current frame holds.
// The controller talks to it through the real HTTPHarvest client, so the
// whole fetch+decode path is under test.
type fakeHarvest struct {
	mu      sync.Mutex
	cand    simArm
	base    simArm
	workers int
	// fresh scripts the /freshness payload; nil keeps the endpoint a 404
	// (a daemon predating watermarks), which must leave decisions unchanged.
	fresh *harvestd.FreshnessReport
	srv   *httptest.Server
}

func newFakeHarvest(t *testing.T, workers int) *fakeHarvest {
	t.Helper()
	f := &fakeHarvest{workers: workers}
	f.cand.essFrac, f.base.essFrac = 1, 1
	mux := http.NewServeMux()
	mux.HandleFunc("/estimates", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		writeJSON(w, []harvestd.PolicyEstimate{f.policyEstimate("base", &f.base), f.policyEstimate("cand", &f.cand)})
	})
	mux.HandleFunc("/diagnostics", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		writeJSON(w, harvestd.DiagnosticsReport{
			Workers: f.workers,
			Policies: []harvestd.PolicyDiagnostics{
				f.policyDiag("base", &f.base),
				f.policyDiag("cand", &f.cand),
			},
		})
	})
	mux.HandleFunc("/freshness", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.fresh == nil {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, f.fresh)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeHarvest) setFreshness(rep *harvestd.FreshnessReport) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fresh = rep
}

func (f *fakeHarvest) policyEstimate(name string, a *simArm) harvestd.PolicyEstimate {
	v, se := a.estimate()
	ev := harvestd.EstimatorValue{Value: v, StdErr: se}
	return harvestd.PolicyEstimate{Policy: name, N: a.n, MatchRate: 1, IPS: ev, ClippedIPS: ev, SNIPS: ev}
}

func (f *fakeHarvest) policyDiag(name string, a *simArm) harvestd.PolicyDiagnostics {
	return harvestd.PolicyDiagnostics{
		Policy: name, N: a.n,
		ESSFraction:  a.essFrac,
		ClipFraction: a.clipFrac,
	}
}

// feed appends one batch per arm under the server lock.
func (f *fakeHarvest) feed(candN int64, candMean, candSD float64, baseN int64, baseMean, baseSD float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cand.addBatch(candN, candMean, candSD)
	f.base.addBatch(baseN, baseMean, baseSD)
}

func (f *fakeHarvest) setCandHealth(essFrac, clipFrac float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cand.essFrac, f.cand.clipFrac = essFrac, clipFrac
}

// shareRecorder is the in-process actuation target.
type shareRecorder struct {
	mu     sync.Mutex
	shares []float64
}

func (s *shareRecorder) SetShare(ctx context.Context, share float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shares = append(s.shares, share)
	return nil
}

func (s *shareRecorder) all() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.shares...)
}

// simController builds a Started controller against the fake harvestd with
// a fixed clock and an hour-long poll interval (the tests drive Step by
// hand; the background loop never fires).
func simController(t *testing.T, f *fakeHarvest, clock *obs.FixedClock, act Actuator, mutate func(*Config)) *Controller {
	t.Helper()
	cfg := Config{
		Candidate:       "cand",
		Baseline:        "base",
		Delta:           0.05,
		CanaryShares:    []float64{0.01, 0.05, 0.25},
		MinStageSamples: 200,
		TermHi:          1,
		ESSFloor:        0.05,
		ClipCeiling:     0.25,
		StaleAfter:      time.Minute,
		PollInterval:    time.Hour,
		Addr:            "127.0.0.1:0",
		Harvest:         &HTTPHarvest{BaseURL: f.srv.URL},
		Actuator:        act,
		Clock:           clock,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.Start(context.Background()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = c.Shutdown(ctx)
	})
	return c
}

func step(t *testing.T, c *Controller, clock *obs.FixedClock) GateDecision {
	t.Helper()
	clock.Advance(2 * time.Second)
	d, err := c.Step(context.Background())
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	return d
}

// TestSimGoodCandidatePromoted walks a strongly better candidate through
// the whole ramp: every stage accumulates enough cleanly separated
// evidence in one poll, so four polls land it at full exposure, and the
// actuator sees exactly the configured ramp.
func TestSimGoodCandidatePromoted(t *testing.T) {
	f := newFakeHarvest(t, 4)
	clock := &obs.FixedClock{T: time.Unix(1700000000, 0).UTC()}
	rec := &shareRecorder{}
	c := simController(t, f, clock, rec, nil)

	stages := []Stage{StageCanary, StageCanary, StageCanary, StageFull}
	shares := []float64{0.01, 0.05, 0.25, 1}
	for i := range stages {
		f.feed(300, 0.8, 0.05, 300, 0.5, 0.05)
		d := step(t, c, clock)
		if d.Outcome != OutcomePromote {
			t.Fatalf("poll %d: outcome %s (%s), want promote", i+1, d.Outcome, d.Reason)
		}
		if d.NextStage != stages[i] || d.NextShare != shares[i] {
			t.Fatalf("poll %d: promoted to %s/%g, want %s/%g",
				i+1, d.NextStage, d.NextShare, stages[i], shares[i])
		}
	}
	if got := c.Stage(); got != StageFull {
		t.Fatalf("final stage %s, want %s", got, StageFull)
	}
	// At full, further polls only monitor.
	f.feed(300, 0.8, 0.05, 300, 0.5, 0.05)
	if d := step(t, c, clock); d.Outcome != OutcomeHold || !strings.Contains(d.Reason, "full exposure") {
		t.Fatalf("post-full outcome %s (%s), want monitoring hold", d.Outcome, d.Reason)
	}
	want := []float64{0, 0.01, 0.05, 0.25, 1} // initial assert + ramp
	if got := rec.all(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("actuated shares %v, want %v", got, want)
	}
}

// TestSimColdStartDecisionEncodes pins the n=0 path: before any data
// arrives, the gate interval's concentration radius is infinite, and an
// unclamped ±Inf bound in the decision record would make every later
// /gates render and checkpoint write fail (encoding/json rejects ±Inf).
// The recorded arms must instead carry the a-priori term range.
func TestSimColdStartDecisionEncodes(t *testing.T) {
	f := newFakeHarvest(t, 4)
	clock := &obs.FixedClock{T: time.Unix(1700000000, 0).UTC()}
	ckpt := filepath.Join(t.TempDir(), "rollout.ckpt")
	c := simController(t, f, clock, nil, func(cfg *Config) { cfg.CheckpointPath = ckpt })

	d := step(t, c, clock)
	if d.Outcome != OutcomeHold {
		t.Fatalf("cold-start outcome %s (%s), want hold", d.Outcome, d.Reason)
	}
	for _, arm := range []GateArm{d.Candidate, d.Baseline} {
		if arm.Lo != 0 || arm.Hi != 1 {
			t.Fatalf("%s interval [%v, %v], want the a-priori term range [0, 1]", arm.Policy, arm.Lo, arm.Hi)
		}
	}
	if _, err := json.Marshal(d); err != nil {
		t.Fatalf("cold-start decision does not encode: %v", err)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatalf("checkpoint with a cold-start decision in the ring: %v", err)
	}
	resp, err := http.Get(c.URL() + "/gates")
	if err != nil {
		t.Fatalf("GET /gates: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	var gates []GateDecision
	if err := json.NewDecoder(resp.Body).Decode(&gates); err != nil {
		t.Fatalf("/gates is not valid JSON with a cold-start decision: %v", err)
	}
	if len(gates) != 1 || gates[0].Outcome != OutcomeHold {
		t.Fatalf("gates = %+v, want the one cold-start hold", gates)
	}
	// The API is read-only: mutating methods are refused.
	post, err := http.Post(c.URL()+"/status", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatalf("POST /status: %v", err)
	}
	_ = post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /status = %d, want %d", post.StatusCode, http.StatusMethodNotAllowed)
	}
}

// TestSimBadCandidateRolledBackAtCanary promotes on good shadow evidence,
// then flips the candidate's live stream to clearly worse: the sequential
// monitor (reset at the canary boundary, so it sees only canary-era
// increments) decides for the baseline and the controller rolls back,
// zeroing the actuated share.
func TestSimBadCandidateRolledBackAtCanary(t *testing.T) {
	f := newFakeHarvest(t, 4)
	clock := &obs.FixedClock{T: time.Unix(1700000000, 0).UTC()}
	rec := &shareRecorder{}
	c := simController(t, f, clock, rec, nil)

	f.feed(300, 0.8, 0.05, 300, 0.5, 0.05)
	if d := step(t, c, clock); d.Outcome != OutcomePromote {
		t.Fatalf("shadow outcome %s (%s), want promote", d.Outcome, d.Reason)
	}
	f.feed(300, 0.2, 0.05, 300, 0.5, 0.05)
	d := step(t, c, clock)
	if d.Outcome != OutcomeRollback {
		t.Fatalf("canary outcome %s (%s), want rollback", d.Outcome, d.Reason)
	}
	if !strings.Contains(d.Reason, "sequential test decided against") {
		t.Fatalf("rollback reason %q, want sequential regression", d.Reason)
	}
	if d.NextStage != StageRolledBack || d.NextShare != 0 {
		t.Fatalf("rollback landed at %s/%g, want %s/0", d.NextStage, d.NextShare, StageRolledBack)
	}
	if got := c.Stage(); got != StageRolledBack {
		t.Fatalf("final stage %s, want %s", got, StageRolledBack)
	}
	shares := rec.all()
	if len(shares) == 0 || shares[len(shares)-1] != 0 {
		t.Fatalf("actuated shares %v, want trailing 0", shares)
	}
	// Terminal: further polls decide nothing and record nothing.
	before := len(c.Gates())
	f.feed(300, 0.9, 0.05, 300, 0.5, 0.05)
	d, err := c.Step(context.Background())
	if err != nil {
		t.Fatalf("terminal Step: %v", err)
	}
	if d.Outcome != OutcomeNone {
		t.Fatalf("terminal outcome %s, want none", d.Outcome)
	}
	if got := len(c.Gates()); got != before {
		t.Fatalf("terminal step recorded a gate (%d -> %d)", before, got)
	}
}

// TestSimFlatCandidateHeld keeps the arms statistically identical: the
// intervals never separate, so the controller holds in shadow forever
// (and never actuates a nonzero share).
func TestSimFlatCandidateHeld(t *testing.T) {
	f := newFakeHarvest(t, 4)
	clock := &obs.FixedClock{T: time.Unix(1700000000, 0).UTC()}
	rec := &shareRecorder{}
	c := simController(t, f, clock, rec, nil)

	for i := 0; i < 5; i++ {
		f.feed(300, 0.5, 0.05, 300, 0.5, 0.05)
		d := step(t, c, clock)
		if d.Outcome != OutcomeHold {
			t.Fatalf("poll %d: outcome %s (%s), want hold", i+1, d.Outcome, d.Reason)
		}
		if !strings.Contains(d.Reason, "EB intervals overlap") {
			t.Fatalf("poll %d: hold reason %q, want interval overlap", i+1, d.Reason)
		}
	}
	if got := c.Stage(); got != StageShadow {
		t.Fatalf("final stage %s, want %s", got, StageShadow)
	}
	if got := rec.all(); fmt.Sprint(got) != "[0]" {
		t.Fatalf("actuated shares %v, want only the initial 0", got)
	}
}

// TestSimESSCollapseRollsBack promotes into canary, then collapses the
// candidate's effective sample size below the floor: the health guard
// fires before any evidence guard and rolls back.
func TestSimESSCollapseRollsBack(t *testing.T) {
	f := newFakeHarvest(t, 4)
	clock := &obs.FixedClock{T: time.Unix(1700000000, 0).UTC()}
	rec := &shareRecorder{}
	c := simController(t, f, clock, rec, nil)

	f.feed(300, 0.8, 0.05, 300, 0.5, 0.05)
	if d := step(t, c, clock); d.Outcome != OutcomePromote {
		t.Fatalf("shadow outcome %s (%s), want promote", d.Outcome, d.Reason)
	}
	f.feed(300, 0.8, 0.05, 300, 0.5, 0.05)
	f.setCandHealth(0.01, 0)
	d := step(t, c, clock)
	if d.Outcome != OutcomeRollback {
		t.Fatalf("outcome %s (%s), want rollback", d.Outcome, d.Reason)
	}
	if !strings.Contains(d.Reason, "estimator health collapsed") {
		t.Fatalf("rollback reason %q, want health collapse", d.Reason)
	}
	var essCheck *GateCheck
	for i := range d.Checks {
		if d.Checks[i].Name == "ess" {
			essCheck = &d.Checks[i]
		}
	}
	if essCheck == nil || essCheck.OK {
		t.Fatalf("ess check missing or OK in %+v", d.Checks)
	}
	if shares := rec.all(); shares[len(shares)-1] != 0 {
		t.Fatalf("actuated shares %v, want trailing 0", shares)
	}
}

// TestSimStaleEstimatesRollBack freezes the candidate stream mid-canary:
// once no new samples arrive for longer than StaleAfter, the controller
// refuses to keep a canary running on a dead estimate and rolls back.
func TestSimStaleEstimatesRollBack(t *testing.T) {
	f := newFakeHarvest(t, 4)
	clock := &obs.FixedClock{T: time.Unix(1700000000, 0).UTC()}
	rec := &shareRecorder{}
	c := simController(t, f, clock, rec, nil)

	f.feed(300, 0.8, 0.05, 300, 0.5, 0.05)
	if d := step(t, c, clock); d.Outcome != OutcomePromote {
		t.Fatalf("shadow outcome %s (%s), want promote", d.Outcome, d.Reason)
	}
	// No new candidate data; clock marches past the staleness window.
	var last GateDecision
	for i := 0; i < 40; i++ {
		last = step(t, c, clock)
		if last.Outcome == OutcomeRollback {
			break
		}
	}
	if last.Outcome != OutcomeRollback || !strings.Contains(last.Reason, "stale") {
		t.Fatalf("outcome %s (%s), want staleness rollback", last.Outcome, last.Reason)
	}
}

// TestSimWatermarkGate drives the pipeline-watermark guard through its
// three regimes: absent /freshness (no check at all — older daemons keep
// their exact decision records), a fresh watermark (check passes), and a
// watermark older than StaleAfter (rollback even while sample counts are
// still growing — the case the count-based staleness guard cannot see).
func TestSimWatermarkGate(t *testing.T) {
	f := newFakeHarvest(t, 4)
	clock := &obs.FixedClock{T: time.Unix(1700000000, 0).UTC()}
	rec := &shareRecorder{}
	c := simController(t, f, clock, rec, nil)

	checkOf := func(d GateDecision, name string) *GateCheck {
		for i := range d.Checks {
			if d.Checks[i].Name == name {
				return &d.Checks[i]
			}
		}
		return nil
	}

	// Regime 1: no /freshness endpoint — the guard must not appear.
	f.feed(300, 0.8, 0.05, 300, 0.5, 0.05)
	d := step(t, c, clock)
	if d.Outcome != OutcomePromote {
		t.Fatalf("poll 1 outcome %s (%s), want promote", d.Outcome, d.Reason)
	}
	if checkOf(d, "watermark") != nil {
		t.Fatalf("watermark check present without a /freshness endpoint: %+v", d.Checks)
	}

	// Regime 2: a fresh watermark passes and is recorded as evidence.
	f.setFreshness(&harvestd.FreshnessReport{
		Version: harvestd.FreshnessVersion, WatermarkSeq: 900,
		WatermarkAgeSeconds: 1.5, Behind: 2,
	})
	f.feed(300, 0.8, 0.05, 300, 0.5, 0.05)
	d = step(t, c, clock)
	if d.Outcome != OutcomePromote {
		t.Fatalf("poll 2 outcome %s (%s), want promote", d.Outcome, d.Reason)
	}
	wc := checkOf(d, "watermark")
	if wc == nil || !wc.OK {
		t.Fatalf("watermark check missing or failed with fresh watermark: %+v", d.Checks)
	}
	if !strings.Contains(wc.Detail, "1.5s") || !strings.Contains(wc.Detail, "seq 900") {
		t.Fatalf("watermark detail %q lacks the evidence", wc.Detail)
	}

	// Regime 3: the shard keeps answering and counts keep growing, but its
	// fold watermark is older than StaleAfter (1m) — rollback.
	f.setFreshness(&harvestd.FreshnessReport{
		Version: harvestd.FreshnessVersion, WatermarkSeq: 900,
		WatermarkAgeSeconds: 120, Behind: 5000,
	})
	f.feed(300, 0.8, 0.05, 300, 0.5, 0.05)
	d = step(t, c, clock)
	if d.Outcome != OutcomeRollback || !strings.Contains(d.Reason, "fold watermark age 120s") {
		t.Fatalf("poll 3 outcome %s (%s), want watermark rollback", d.Outcome, d.Reason)
	}
	if wc := checkOf(d, "watermark"); wc == nil || wc.OK {
		t.Fatalf("failed watermark check not recorded: %+v", d.Checks)
	}
	if got := c.Stage(); got != StageRolledBack {
		t.Fatalf("final stage %s, want %s", got, StageRolledBack)
	}
}

// TestSimExactGateDecisionJSON pins one complete gate-decision record: the
// controller's serialized decision must be byte-identical to an expected
// record constructed independently from the same scripted inputs — the
// machine-readable audit contract.
func TestSimExactGateDecisionJSON(t *testing.T) {
	f := newFakeHarvest(t, 4)
	clock := &obs.FixedClock{T: time.Unix(1700000000, 0).UTC()}
	c := simController(t, f, clock, nil, nil)

	f.feed(256, 0.75, 0.0625, 256, 0.25, 0.0625)
	d := step(t, c, clock)
	got, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}

	// Reconstruct the record from first principles: the served estimates,
	// the gate interval the controller must have computed, and the
	// increment-fed sequential state.
	candV, candSE := f.cand.estimate()
	baseV, baseSE := f.base.estimate()
	candIv := ope.HighConfidenceInterval(ope.Estimate{Value: candV, StdErr: candSE, N: 256}, 1, 0.05)
	baseIv := ope.HighConfidenceInterval(ope.Estimate{Value: baseV, StdErr: baseSE, N: 256}, 1, 0.05)
	want := GateDecision{
		Seq:           1,
		TimeUnixMilli: time.Unix(1700000002, 0).UnixMilli(),
		Stage:         StageShadow,
		Share:         0,
		Outcome:       OutcomePromote,
		Reason:        "EB separation and sequential test agree: candidate better (objective max)",
		NextStage:     StageCanary,
		NextShare:     0.01,
		Candidate: GateArm{
			Policy: "cand", N: 256, Value: candV, StdErr: candSE,
			Lo: candIv.Lo, Hi: candIv.Hi, ESSFraction: 1,
		},
		Baseline: GateArm{
			Policy: "base", N: 256, Value: baseV, StdErr: baseSE,
			Lo: baseIv.Lo, Hi: baseIv.Hi, ESSFraction: 1,
		},
		Checks: []GateCheck{
			{Name: "staleness", OK: true, Detail: "no new candidate samples for 0s (limit 1m0s)"},
			{Name: "ess", OK: true, Detail: "candidate ESS fraction 1 (floor 0.05)"},
			{Name: "clip", OK: true, Detail: "candidate clip fraction 0 (ceiling 0.25)"},
			{Name: "eb_separation", OK: true, Detail: fmt.Sprintf(
				"candidate [%g, %g] vs baseline [%g, %g] (objective max)",
				candIv.Lo, candIv.Hi, baseIv.Lo, baseIv.Hi)},
			{Name: "sequential", OK: true, Detail: "decided=true winner=arm1 n0=256 n1=256"},
			{Name: "min_samples", OK: true, Detail: "256/200 new candidate samples this stage"},
		},
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantJSON) {
		t.Fatalf("gate decision JSON mismatch:\n got: %s\nwant: %s", got, wantJSON)
	}
}

// TestSimGatesByteIdenticalAcrossWorkers replays the same scripted
// estimate sequence against controllers watching daemons that differ only
// in worker count (and therefore in nothing the gates may read): the full
// /gates histories must be byte-identical.
func TestSimGatesByteIdenticalAcrossWorkers(t *testing.T) {
	run := func(workers int) []byte {
		f := newFakeHarvest(t, workers)
		clock := &obs.FixedClock{T: time.Unix(1700000000, 0).UTC()}
		c := simController(t, f, clock, nil, nil)
		// Good, then flat, then regressing — touch every outcome.
		script := []struct{ candMean, baseMean float64 }{
			{0.8, 0.5}, {0.5, 0.5}, {0.5, 0.5}, {0.2, 0.5}, {0.2, 0.5},
		}
		for _, s := range script {
			f.feed(300, s.candMean, 0.05, 300, s.baseMean, 0.05)
			clock.Advance(2 * time.Second)
			if _, err := c.Step(context.Background()); err != nil {
				t.Fatalf("Step: %v", err)
			}
		}
		resp, err := http.Get(c.URL() + "/gates")
		if err != nil {
			t.Fatalf("GET /gates: %v", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	a, b := run(1), run(16)
	if !bytes.Equal(a, b) {
		t.Fatalf("/gates history differs across worker counts:\n%s\nvs\n%s", a, b)
	}
	if len(a) < 100 {
		t.Fatalf("suspiciously small /gates body: %s", a)
	}
}
