package rollout

// Benchmarks for the controller's hot paths: one full gate evaluation (the
// pure decision function every poll runs) and one state-machine transition
// (promote bookkeeping: monitor reset, transition record, share change).
// `make bench` runs these into BENCH_harvestd.json for CI trend tracking —
// a controller polling many candidates must keep both costs trivial next
// to the HTTP round-trip they ride on.

import (
	"testing"
	"time"

	"repro/internal/abtest"
)

// benchInputs builds a realistic mid-canary evaluation: both arms populated,
// monitor decided, all guards green — the longest path through evaluate.
func benchInputs(b *testing.B, cfg *Config) gateInputs {
	b.Helper()
	seq, err := abtest.NewSequentialEB(cfg.TermLo, cfg.TermHi, cfg.Delta)
	if err != nil {
		b.Fatal(err)
	}
	if err := seq.AddBatch(0, 2048, 0.5*2048, (0.05*0.05+0.25)*2048); err != nil {
		b.Fatal(err)
	}
	if err := seq.AddBatch(1, 2048, 0.8*2048, (0.05*0.05+0.64)*2048); err != nil {
		b.Fatal(err)
	}
	return gateInputs{
		Poll:  7,
		Now:   time.Unix(1700000000, 0).UTC(),
		Stage: StageCanary,
		Share: 0.05, ShareIdx: 1,
		Cand:         GateArm{Policy: "cand", N: 2048, Value: 0.8, StdErr: 0.001, Lo: 0.77, Hi: 0.83, ESSFraction: 1},
		Base:         GateArm{Policy: "base", N: 2048, Value: 0.5, StdErr: 0.001, Lo: 0.47, Hi: 0.53, ESSFraction: 1},
		StageSamples: 2048,
		StaleFor:     2 * time.Second,
		Seq:          seq,
	}
}

func BenchmarkGateEval(b *testing.B) {
	cfg := Config{Candidate: "cand", Baseline: "base", Harvest: &HTTPHarvest{BaseURL: "http://unused"}}
	if err := cfg.fillDefaults(); err != nil {
		b.Fatal(err)
	}
	in := benchInputs(b, &cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := evaluate(&cfg, in)
		if d.Outcome != OutcomePromote {
			b.Fatalf("outcome %s, want promote", d.Outcome)
		}
	}
}

func BenchmarkStateTransition(b *testing.B) {
	c, err := New(Config{Candidate: "cand", Baseline: "base", Harvest: &HTTPHarvest{BaseURL: "http://unused"}})
	if err != nil {
		b.Fatal(err)
	}
	now := time.Unix(1700000000, 0).UTC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.mu.Lock()
		c.stage, c.shareIdx = StageShadow, 0
		c.transitions = c.transitions[:0]
		d := GateDecision{Outcome: OutcomePromote, Reason: "bench"}
		c.apply(&d, now)
		if d.NextStage != StageCanary {
			c.mu.Unlock()
			b.Fatalf("transitioned to %s, want canary", d.NextStage)
		}
		c.mu.Unlock()
	}
}
