package rollout

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/abtest"
)

// CheckpointVersion guards the on-disk rollout checkpoint schema; bump it
// whenever the Checkpoint field set changes (wirecompat enforces this via
// internal/lint/wire.lock).
const CheckpointVersion = 1

// Checkpoint is the controller's complete durable state: the state machine
// position, the last-seen estimator totals (so increments keep folding
// correctly across a restart), the sequential monitor, and the decision
// history. Restoring it reproduces the controller exactly — the resumed
// /status renders byte-identical to an uninterrupted run under the same
// clock.
type Checkpoint struct {
	Version   int    `json:"version"`
	Candidate string `json:"candidate"`
	Baseline  string `json:"baseline"`
	Stage     Stage  `json:"stage"`
	ShareIdx  int    `json:"share_idx"`
	Polls     int64  `json:"polls"`
	GateSeq   int64  `json:"gate_seq"`
	// StageEnteredPoll / StageEnteredN anchor the per-stage sample floor.
	StageEnteredPoll int64 `json:"stage_entered_poll"`
	StageEnteredN    int64 `json:"stage_entered_n"`
	// LastProgressUnixMilli is the injected-clock time of the last
	// candidate-count growth, for the staleness guard.
	LastProgressUnixMilli int64 `json:"last_progress_unix_milli"`
	// Last-seen per-arm estimator totals (for increment folding).
	CandN     int64   `json:"cand_n"`
	CandSum   float64 `json:"cand_sum"`
	CandSumSq float64 `json:"cand_sum_sq"`
	BaseN     int64   `json:"base_n"`
	BaseSum   float64 `json:"base_sum"`
	BaseSumSq float64 `json:"base_sum_sq"`
	// Sequential is the anytime monitor's full state.
	Sequential  abtest.SequentialState `json:"sequential"`
	Gates       []GateDecision         `json:"gates"`
	Transitions []StageTransition      `json:"transitions"`
}

// snapshotLocked captures the checkpoint payload under c.mu.
func (c *Controller) snapshotLocked() Checkpoint {
	return Checkpoint{
		Version:               CheckpointVersion,
		Candidate:             c.cfg.Candidate,
		Baseline:              c.cfg.Baseline,
		Stage:                 c.stage,
		ShareIdx:              c.shareIdx,
		Polls:                 c.polls,
		GateSeq:               c.gateSeq,
		StageEnteredPoll:      c.stageEnteredPoll,
		StageEnteredN:         c.stageEnteredN,
		LastProgressUnixMilli: timeToMS(c.lastProgress),
		CandN:                 c.lastCand.N,
		CandSum:               c.lastCand.Sum,
		CandSumSq:             c.lastCand.SumSq,
		BaseN:                 c.lastBase.N,
		BaseSum:               c.lastBase.Sum,
		BaseSumSq:             c.lastBase.SumSq,
		Sequential:            c.seq.State(),
		Gates:                 append([]GateDecision(nil), c.gates...),
		Transitions:           append([]StageTransition(nil), c.transitions...),
	}
}

// Checkpoint atomically persists the controller state with the same
// protocol as harvestd: marshal to a temp file in the destination
// directory, fsync, rename — a crash mid-write leaves the previous
// checkpoint intact.
func (c *Controller) Checkpoint() error {
	path := c.cfg.CheckpointPath
	if path == "" {
		return fmt.Errorf("rollout: checkpointing disabled")
	}
	c.mu.Lock()
	ck := c.snapshotLocked()
	c.mu.Unlock()
	blob, err := json.MarshalIndent(&ck, "", " ")
	if err != nil {
		return fmt.Errorf("rollout: encoding checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("rollout: checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(blob); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("rollout: writing checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("rollout: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("rollout: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("rollout: publishing checkpoint: %w", err)
	}
	return nil
}

// isNotExist reports whether loading failed only because no checkpoint
// exists yet (a cold start, not an error).
func isNotExist(err error) bool { return errors.Is(err, os.ErrNotExist) }

// timeToMS maps the zero time to 0 so msToTime can invert it exactly.
func timeToMS(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixMilli()
}

// msToTime inverts timeToMS, preserving the zero value (a controller
// checkpointed before its first Start has no progress timestamp yet).
func msToTime(ms int64) time.Time {
	if ms == 0 {
		return time.Time{}
	}
	return time.UnixMilli(ms).UTC()
}

// loadCheckpointLocked restores state from cfg.CheckpointPath. Corrupt or
// mismatched checkpoints are rejected with the path in the error — a
// controller that silently started a rollout from scratch could re-promote
// a candidate that was just rolled back.
func (c *Controller) loadCheckpointLocked() error {
	path := c.cfg.CheckpointPath
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var ck Checkpoint
	if err := json.Unmarshal(blob, &ck); err != nil {
		return fmt.Errorf("corrupt checkpoint %s: %w", path, err)
	}
	if ck.Version != CheckpointVersion {
		return fmt.Errorf("checkpoint %s has version %d, want %d", path, ck.Version, CheckpointVersion)
	}
	if ck.Candidate != c.cfg.Candidate || ck.Baseline != c.cfg.Baseline {
		return fmt.Errorf("checkpoint %s tracks %s vs %s, config wants %s vs %s",
			path, ck.Candidate, ck.Baseline, c.cfg.Candidate, c.cfg.Baseline)
	}
	switch ck.Stage {
	case StageShadow, StageFull, StageRolledBack:
	case StageCanary:
		if ck.ShareIdx < 0 || ck.ShareIdx >= len(c.cfg.CanaryShares) {
			return fmt.Errorf("checkpoint %s canary index %d out of range (shares %v)",
				path, ck.ShareIdx, c.cfg.CanaryShares)
		}
	default:
		return fmt.Errorf("checkpoint %s has unknown stage %q", path, ck.Stage)
	}
	seq, err := abtest.RestoreSequential(ck.Sequential)
	if err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	c.stage = ck.Stage
	c.shareIdx = ck.ShareIdx
	c.polls = ck.Polls
	c.gateSeq = ck.GateSeq
	c.stageEnteredPoll = ck.StageEnteredPoll
	c.stageEnteredN = ck.StageEnteredN
	c.lastProgress = msToTime(ck.LastProgressUnixMilli)
	c.lastCand = armTotals{N: ck.CandN, Sum: ck.CandSum, SumSq: ck.CandSumSq}
	c.lastBase = armTotals{N: ck.BaseN, Sum: ck.BaseSum, SumSq: ck.BaseSumSq}
	c.seq = seq
	c.gates = append([]GateDecision(nil), ck.Gates...)
	c.transitions = append([]StageTransition(nil), ck.Transitions...)
	c.met.setStage(c.stage, c.share())
	return nil
}
