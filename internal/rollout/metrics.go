package rollout

import "repro/internal/obs"

// metrics is the controller's obs instrumentation: counters the loops bump
// and gauges the /metrics scrape reads. Stage is exported one-hot (a gauge
// per stage name) so dashboards can plot transitions without string labels.
type metrics struct {
	polls         *obs.Counter
	pollErrors    *obs.Counter
	promotions    *obs.Counter
	rollbacks     *obs.Counter
	holds         *obs.Counter
	actuateErrors *obs.Counter
	seqRejects    *obs.Counter
	share         *obs.Gauge
	stageGauges   map[Stage]*obs.Gauge
}

func (c *Controller) initMetrics() {
	r := obs.NewRegistry()
	m := &metrics{
		polls:         r.Counter("rolloutd_polls_total", "control cycles executed"),
		pollErrors:    r.Counter("rolloutd_poll_errors_total", "control cycles aborted by fetch errors"),
		promotions:    r.Counter("rolloutd_promotions_total", "stage promotions applied"),
		rollbacks:     r.Counter("rolloutd_rollbacks_total", "automatic rollbacks applied"),
		holds:         r.Counter("rolloutd_holds_total", "gate evaluations that held the current stage"),
		actuateErrors: r.Counter("rolloutd_actuate_errors_total", "failed share pushes to the actuation target"),
		seqRejects:    r.Counter("rolloutd_seq_rejects_total", "estimator increments the sequential monitor rejected"),
		share:         r.Gauge("rolloutd_share", "candidate traffic share currently actuated"),
		stageGauges:   make(map[Stage]*obs.Gauge),
	}
	for _, st := range []Stage{StageShadow, StageCanary, StageFull, StageRolledBack} {
		m.stageGauges[st] = r.Gauge("rolloutd_stage", "1 for the current stage, 0 otherwise", "stage", string(st))
	}
	r.GaugeFunc("rolloutd_uptime_seconds", "seconds since the controller started", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.start.IsZero() {
			return 0
		}
		return c.cfg.Clock.Now().Sub(c.start).Seconds()
	})
	obs.RegisterGoRuntime(r)
	c.obsReg = r
	c.met = m
	m.setStage(StageShadow, 0)
}

// setStage updates the one-hot stage gauges and the share gauge.
func (m *metrics) setStage(cur Stage, share float64) {
	for st, g := range m.stageGauges {
		v := 0.0
		if st == cur {
			v = 1
		}
		g.Set(v)
	}
	m.share.Set(share)
}
