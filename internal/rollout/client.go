package rollout

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/harvestd"
)

// HarvestClient supplies the controller's two inputs. Both harvestd and
// harvestagg serve these shapes, so a controller can watch a single shard
// or a whole fleet; tests supply scripted implementations.
type HarvestClient interface {
	// Estimates returns the current per-policy estimates.
	Estimates(ctx context.Context) ([]harvestd.PolicyEstimate, error)
	// Diagnostics returns the current estimator-health report.
	Diagnostics(ctx context.Context) (harvestd.DiagnosticsReport, error)
}

// WatermarkInfo is the slice of a /freshness payload the watermark guard
// reads. Both harvestd's FreshnessReport and harvestagg's FleetFreshness
// render these fields at top level, so one decode shape gates on either
// tier.
type WatermarkInfo struct {
	// Seq is the folded-record sequence watermark (-1 unknown).
	Seq int64 `json:"watermark_seq"`
	// AgeSeconds is how old the last fold behind the estimates is
	// (-1: nothing folded yet).
	AgeSeconds float64 `json:"watermark_age_seconds"`
	// Behind counts records ingested but not yet folded.
	Behind int64 `json:"behind"`
}

// FreshnessClient is the optional extension a HarvestClient implements
// when its estimate surface also serves pipeline watermarks. The
// controller type-asserts for it: clients without it (older daemons,
// scripted tests) simply skip the watermark guard.
type FreshnessClient interface {
	// Freshness returns the current watermark view, or (nil, nil) when the
	// surface does not serve one.
	Freshness(ctx context.Context) (*WatermarkInfo, error)
}

// HTTPHarvest reads /estimates and /diagnostics from a harvestd or
// harvestagg base URL.
type HTTPHarvest struct {
	// BaseURL is e.g. "http://127.0.0.1:9001" (no trailing slash needed).
	BaseURL string
	// Client defaults to a client with a 10s timeout.
	Client *http.Client
}

func (h *HTTPHarvest) get(ctx context.Context, path string, v any) error {
	client := h.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.BaseURL+path, nil)
	if err != nil {
		return fmt.Errorf("rollout: building %s request: %w", path, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("rollout: fetching %s: %w", path, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("rollout: %s: status %d: %s", path, resp.StatusCode, body)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, core.MaxRecordBytes)).Decode(v); err != nil {
		return fmt.Errorf("rollout: decoding %s: %w", path, err)
	}
	return nil
}

// Estimates implements HarvestClient.
func (h *HTTPHarvest) Estimates(ctx context.Context) ([]harvestd.PolicyEstimate, error) {
	var out []harvestd.PolicyEstimate
	if err := h.get(ctx, "/estimates", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Diagnostics implements HarvestClient.
func (h *HTTPHarvest) Diagnostics(ctx context.Context) (harvestd.DiagnosticsReport, error) {
	var out harvestd.DiagnosticsReport
	if err := h.get(ctx, "/diagnostics", &out); err != nil {
		return harvestd.DiagnosticsReport{}, err
	}
	return out, nil
}

// Freshness implements FreshnessClient. A 404 reports (nil, nil): the
// daemon predates the /freshness endpoint and the watermark guard is
// simply unavailable, which must not fail the control cycle.
func (h *HTTPHarvest) Freshness(ctx context.Context) (*WatermarkInfo, error) {
	client := h.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.BaseURL+"/freshness", nil)
	if err != nil {
		return nil, fmt.Errorf("rollout: building /freshness request: %w", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("rollout: fetching /freshness: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("rollout: /freshness: status %d: %s", resp.StatusCode, body)
	}
	var out WatermarkInfo
	if err := json.NewDecoder(io.LimitReader(resp.Body, core.MaxRecordBytes)).Decode(&out); err != nil {
		return nil, fmt.Errorf("rollout: decoding /freshness: %w", err)
	}
	return &out, nil
}

// fetchArms pulls one coherent estimate+diagnostics pair and extracts the
// two policies the controller watches. A missing candidate or baseline is
// an error: gating on a policy the daemon is not tracking would silently
// hold forever.
func fetchArms(ctx context.Context, h HarvestClient, candidate, baseline string) (
	cand, base harvestd.PolicyEstimate, diag harvestd.DiagnosticsReport, err error) {
	ests, err := h.Estimates(ctx)
	if err != nil {
		return cand, base, diag, err
	}
	diag, err = h.Diagnostics(ctx)
	if err != nil {
		return cand, base, diag, err
	}
	candOK, baseOK := false, false
	for _, pe := range ests {
		switch pe.Policy {
		case candidate:
			cand, candOK = pe, true
		case baseline:
			base, baseOK = pe, true
		}
	}
	if !candOK {
		return cand, base, diag, fmt.Errorf("rollout: candidate %q not in served estimates", candidate)
	}
	if !baseOK {
		return cand, base, diag, fmt.Errorf("rollout: baseline %q not in served estimates", baseline)
	}
	return cand, base, diag, nil
}

// diagOf finds one policy's diagnostics row (zero value if absent —
// health checks then see 0 fractions, and the ESS guard skips N==0 arms).
func diagOf(rep harvestd.DiagnosticsReport, policy string) harvestd.PolicyDiagnostics {
	for _, dg := range rep.Policies {
		if dg.Policy == policy {
			return dg
		}
	}
	return harvestd.PolicyDiagnostics{}
}
