package rollout

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Actuator pushes the controller's chosen candidate traffic share to the
// system serving requests. Implementations must be idempotent: the
// controller re-asserts the current share on startup (a restart mid-canary
// replays the last transition's share).
type Actuator interface {
	// SetShare sets the candidate's traffic share in [0, 1].
	SetShare(ctx context.Context, share float64) error
}

// FuncActuator adapts a function — the in-process hook for tests and for
// embedding the controller next to a policy.DynamicBlend.
type FuncActuator func(ctx context.Context, share float64) error

// SetShare implements Actuator.
func (f FuncActuator) SetShare(ctx context.Context, share float64) error { return f(ctx, share) }

// shareBody is the actuation wire payload, shared with lbd's admin
// endpoint.
type shareBody struct {
	Share float64 `json:"share"`
}

// HTTPActuator POSTs {"share": x} to a URL — lbd's -admin-addr /share
// endpoint, or anything speaking the same one-field contract.
type HTTPActuator struct {
	// URL is the full endpoint, e.g. "http://127.0.0.1:9090/share".
	URL string
	// Client defaults to a client with a 10s timeout.
	Client *http.Client
}

// SetShare implements Actuator.
func (a *HTTPActuator) SetShare(ctx context.Context, share float64) error {
	if share < 0 || share > 1 {
		return fmt.Errorf("rollout: share %g out of [0, 1]", share)
	}
	body, err := json.Marshal(shareBody{Share: share})
	if err != nil {
		return fmt.Errorf("rollout: encoding share: %w", err)
	}
	client := a.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.URL, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("rollout: building actuation request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("rollout: actuating %s: %w", a.URL, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("rollout: actuating %s: status %d: %s", a.URL, resp.StatusCode, msg)
	}
	return nil
}
