package ope

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/stats"
)

// AlignedDR is the doubly robust estimator fed precomputed, dataset-aligned
// reward predictions — the entry point for cross-fitted models
// (learn.CrossFitRewardPredictions), where each datapoint's prediction
// comes from a model trained without that datapoint:
//
//	v = (1/N) Σ_t [ pred[t][π(x_t)] + w_t·(r_t − pred[t][a_t]) ]
//
// With predictions independent of each datapoint, the estimate keeps DR's
// unbiasedness guarantee even when the model class is rich enough to
// memorize the training noise (where in-sample DoublyRobust quietly turns
// into the direct method).
func AlignedDR(policy core.Policy, data core.Dataset, pred [][]float64, clip float64) (Estimate, error) {
	if len(data) == 0 {
		return Estimate{}, core.ErrNoData
	}
	if len(pred) != len(data) {
		return Estimate{}, fmt.Errorf("ope: %d prediction rows for %d datapoints", len(pred), len(data))
	}
	var (
		acc     stats.Welford
		matches int
		maxW    float64
	)
	for i := range data {
		d := &data[i]
		if !(d.Propensity > 0) {
			return Estimate{}, fmt.Errorf("ope: datapoint %d has propensity %v; %w",
				i, d.Propensity, errBadPropensity)
		}
		row := pred[i]
		if len(row) < d.Context.NumActions {
			return Estimate{}, fmt.Errorf("ope: prediction row %d has %d actions, context has %d",
				i, len(row), d.Context.NumActions)
		}
		aPi := policy.Act(&d.Context)
		pi := core.ActionProb(policy, &d.Context, d.Action)
		w := pi / d.Propensity
		if clip > 0 && w > clip {
			w = clip
		}
		if pi > 0 {
			matches++
		}
		if w > maxW {
			maxW = w
		}
		acc.Add(row[aPi] + w*(d.Reward-row[d.Action]))
	}
	n := float64(len(data))
	return Estimate{
		Value:     acc.Mean(),
		StdErr:    math.Sqrt(acc.Variance() / n),
		N:         len(data),
		Matches:   matches,
		MaxWeight: maxW,
	}, nil
}
