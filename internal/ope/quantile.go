package ope

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// QuantileIPS estimates a quantile of the candidate policy's reward
// distribution — not its mean — from exploration data. Table 1 casts load
// balancing's system-level reward as "[-] 99th percentile latency"; the
// CB reformulation uses per-request latency, and this estimator recovers
// the tail metric offline from those per-request rewards.
//
// The estimate is the weighted quantile of the matched datapoints' rewards
// with importance weights w_t = π(a_t|x_t)/p_t: the weighted empirical CDF
//
//	F̂(r) = Σ_t w_t·1{r_t ≤ r} / Σ_t w_t
//
// is inverted at Q. This is the self-normalized (SNIPS-style) form, which
// keeps the estimate inside the observed reward range.
type QuantileIPS struct {
	// Q is the quantile in (0, 1), e.g. 0.99 for p99.
	Q float64
	// Clip caps weights (<= 0 disables).
	Clip float64
}

// Name implements a diagnostic label.
func (q QuantileIPS) Name() string { return fmt.Sprintf("quantile-ips-%.3g", q.Q) }

// Estimate computes the weighted quantile. The returned Estimate's Value
// is the quantile; StdErr is a bootstrap-free plug-in band (half the gap
// between the neighbouring order statistics), which is crude but useful as
// a resolution indicator.
func (q QuantileIPS) Estimate(policy core.Policy, data core.Dataset) (Estimate, error) {
	if len(data) == 0 {
		return Estimate{}, core.ErrNoData
	}
	if q.Q <= 0 || q.Q >= 1 {
		return Estimate{}, fmt.Errorf("ope: quantile %v out of (0,1)", q.Q)
	}
	type wr struct {
		r, w float64
	}
	matched := make([]wr, 0, len(data))
	totalW := 0.0
	maxW := 0.0
	for i := range data {
		d := &data[i]
		if !(d.Propensity > 0) {
			return Estimate{}, fmt.Errorf("ope: datapoint %d has propensity %v; %w",
				i, d.Propensity, errBadPropensity)
		}
		pi := core.ActionProb(policy, &d.Context, d.Action)
		if pi == 0 {
			continue
		}
		w := pi / d.Propensity
		if q.Clip > 0 && w > q.Clip {
			w = q.Clip
		}
		if w > maxW {
			maxW = w
		}
		matched = append(matched, wr{r: d.Reward, w: w})
		totalW += w
	}
	if len(matched) == 0 || totalW <= 0 {
		return Estimate{}, fmt.Errorf("%w: no datapoint matches the candidate policy", ErrNoOverlap)
	}
	sort.Slice(matched, func(i, j int) bool { return matched[i].r < matched[j].r })
	target := q.Q * totalW
	cum := 0.0
	idx := len(matched) - 1
	for i := range matched {
		cum += matched[i].w
		if cum >= target {
			idx = i
			break
		}
	}
	est := Estimate{
		Value:     matched[idx].r,
		N:         len(data),
		Matches:   len(matched),
		MaxWeight: maxW,
	}
	// Resolution band: half the spread to the neighbouring order stats.
	lo, hi := matched[idx].r, matched[idx].r
	if idx > 0 {
		lo = matched[idx-1].r
	}
	if idx+1 < len(matched) {
		hi = matched[idx+1].r
	}
	est.StdErr = (hi - lo) / 2
	return est, nil
}
