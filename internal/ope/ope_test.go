package ope

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

// trueReward is the deterministic synthetic reward surface used throughout
// these tests: reward of action a in context x depends on both.
func trueReward(x core.Vector, a core.Action) float64 {
	return 0.5 + 0.3*x[0]*float64(a) - 0.1*float64(a)
}

// genUniformLog generates n exploration datapoints logged by a uniform
// random policy over k actions, with deterministic rewards.
func genUniformLog(r *rand.Rand, n, k int) core.Dataset {
	ds := make(core.Dataset, n)
	for i := range ds {
		x := core.Vector{r.Float64()}
		a := core.Action(r.Intn(k))
		ds[i] = core.Datapoint{
			Context:    core.Context{Features: x, NumActions: k},
			Action:     a,
			Reward:     trueReward(x, a),
			Propensity: 1.0 / float64(k),
		}
	}
	return ds
}

// truth computes the exact expected reward of a deterministic policy under
// the uniform context distribution by Monte Carlo with a fresh stream.
func truth(policy core.Policy, k int) float64 {
	r := stats.NewRand(999)
	var w stats.Welford
	for i := 0; i < 200000; i++ {
		x := core.Vector{r.Float64()}
		ctx := core.Context{Features: x, NumActions: k}
		w.Add(trueReward(x, policy.Act(&ctx)))
	}
	return w.Mean()
}

// always returns a constant-action policy.
func always(a core.Action) core.Policy {
	return core.PolicyFunc(func(*core.Context) core.Action { return a })
}

// threshold policies switch action on a feature threshold.
func thresholdPolicy(cut float64, below, above core.Action) core.Policy {
	return core.PolicyFunc(func(ctx *core.Context) core.Action {
		if ctx.Features[0] < cut {
			return below
		}
		return above
	})
}

func TestIPSUnbiasedOnConstantPolicy(t *testing.T) {
	r := stats.NewRand(1)
	ds := genUniformLog(r, 50000, 4)
	for a := core.Action(0); a < 4; a++ {
		est, err := (IPS{}).Estimate(always(a), ds)
		if err != nil {
			t.Fatal(err)
		}
		want := truth(always(a), 4)
		if math.Abs(est.Value-want) > 3*est.StdErr+0.01 {
			t.Errorf("action %d: ips = %v, truth = %v (se %v)", a, est.Value, want, est.StdErr)
		}
	}
}

func TestIPSUnbiasedOnContextualPolicy(t *testing.T) {
	r := stats.NewRand(2)
	ds := genUniformLog(r, 50000, 4)
	pol := thresholdPolicy(0.5, 0, 3)
	est, err := (IPS{}).Estimate(pol, ds)
	if err != nil {
		t.Fatal(err)
	}
	want := truth(pol, 4)
	if math.Abs(est.Value-want) > 3*est.StdErr+0.01 {
		t.Errorf("ips = %v, truth = %v", est.Value, want)
	}
}

func TestIPSMatchesCount(t *testing.T) {
	r := stats.NewRand(3)
	ds := genUniformLog(r, 10000, 4)
	est, err := (IPS{}).Estimate(always(2), ds)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform logging over 4 actions: ~1/4 of datapoints match.
	frac := float64(est.Matches) / float64(est.N)
	if math.Abs(frac-0.25) > 0.02 {
		t.Errorf("match fraction = %v, want ≈0.25", frac)
	}
	if est.MaxWeight != 4 {
		t.Errorf("max weight = %v, want 4", est.MaxWeight)
	}
}

func TestIPSEmptyData(t *testing.T) {
	_, err := (IPS{}).Estimate(always(0), nil)
	if !errors.Is(err, core.ErrNoData) {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

func TestIPSBadPropensity(t *testing.T) {
	ds := core.Dataset{{
		Context:    core.Context{NumActions: 2},
		Action:     0,
		Propensity: 0,
	}}
	if _, err := (IPS{}).Estimate(always(0), ds); err == nil {
		t.Error("zero propensity should fail")
	}
}

func TestClippedIPSReducesMaxWeight(t *testing.T) {
	r := stats.NewRand(4)
	// Log with very skewed propensities.
	ds := make(core.Dataset, 5000)
	for i := range ds {
		x := core.Vector{r.Float64()}
		var a core.Action
		var p float64
		if r.Float64() < 0.95 {
			a, p = 0, 0.95
		} else {
			a, p = 1, 0.05
		}
		ds[i] = core.Datapoint{
			Context:    core.Context{Features: x, NumActions: 2},
			Action:     a,
			Reward:     trueReward(x, a),
			Propensity: p,
		}
	}
	plain, err := (IPS{}).Estimate(always(1), ds)
	if err != nil {
		t.Fatal(err)
	}
	clipped, err := (ClippedIPS{Max: 5}).Estimate(always(1), ds)
	if err != nil {
		t.Fatal(err)
	}
	if plain.MaxWeight <= 5 {
		t.Fatalf("test setup broken: plain max weight %v", plain.MaxWeight)
	}
	if clipped.MaxWeight > 5 {
		t.Errorf("clipped max weight = %v, want <= 5", clipped.MaxWeight)
	}
	if clipped.StdErr >= plain.StdErr {
		t.Errorf("clipping should reduce variance: %v >= %v", clipped.StdErr, plain.StdErr)
	}
	// Positive rewards: clipping can only pull the estimate down.
	if clipped.Value > plain.Value+1e-12 {
		t.Errorf("clipping raised the estimate: %v > %v", clipped.Value, plain.Value)
	}
}

func TestClippedIPSNoClipEqualsIPS(t *testing.T) {
	r := stats.NewRand(5)
	ds := genUniformLog(r, 1000, 3)
	a, _ := (IPS{}).Estimate(always(1), ds)
	b, _ := (ClippedIPS{Max: 0}).Estimate(always(1), ds)
	if a.Value != b.Value || a.StdErr != b.StdErr {
		t.Error("Max<=0 should be identical to plain IPS")
	}
}

func TestSNIPSTranslationInvariance(t *testing.T) {
	r := stats.NewRand(6)
	ds := genUniformLog(r, 5000, 3)
	shifted := make(core.Dataset, len(ds))
	copy(shifted, ds)
	for i := range shifted {
		shifted[i].Reward += 10
	}
	pol := thresholdPolicy(0.3, 1, 2)
	a, err := (SNIPS{}).Estimate(pol, ds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (SNIPS{}).Estimate(pol, shifted)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((b.Value-a.Value)-10) > 1e-9 {
		t.Errorf("snips should shift exactly by 10: %v -> %v", a.Value, b.Value)
	}
	// Plain IPS does NOT have this property under partial matching.
	c, _ := (IPS{}).Estimate(pol, ds)
	d, _ := (IPS{}).Estimate(pol, shifted)
	if math.Abs((d.Value-c.Value)-10) < 1e-9 {
		t.Error("expected plain IPS to violate translation invariance on this data")
	}
}

func TestSNIPSNoOverlap(t *testing.T) {
	ds := core.Dataset{{
		Context:    core.Context{NumActions: 3},
		Action:     0,
		Propensity: 1.0 / 3,
	}}
	_, err := (SNIPS{}).Estimate(always(1), ds)
	if !errors.Is(err, ErrNoOverlap) {
		t.Errorf("err = %v, want ErrNoOverlap", err)
	}
}

func TestSNIPSLowerVarianceThanIPS(t *testing.T) {
	r := stats.NewRand(7)
	ds := genUniformLog(r, 20000, 8)
	pol := always(3)
	ips, _ := (IPS{}).Estimate(pol, ds)
	snips, _ := (SNIPS{}).Estimate(pol, ds)
	if snips.StdErr >= ips.StdErr {
		t.Errorf("snips se %v should beat ips se %v on 8 actions", snips.StdErr, ips.StdErr)
	}
	want := truth(pol, 8)
	if math.Abs(snips.Value-want) > 0.05 {
		t.Errorf("snips = %v, truth = %v", snips.Value, want)
	}
}

// perfectModel implements RewardModel with the true reward surface.
type perfectModel struct{}

func (perfectModel) Predict(ctx *core.Context, a core.Action) float64 {
	return trueReward(ctx.Features, a)
}

// biasedModel is systematically wrong by +0.2.
type biasedModel struct{}

func (biasedModel) Predict(ctx *core.Context, a core.Action) float64 {
	return trueReward(ctx.Features, a) + 0.2
}

func TestDirectMethodExactWithPerfectModel(t *testing.T) {
	r := stats.NewRand(8)
	ds := genUniformLog(r, 20000, 4)
	pol := thresholdPolicy(0.5, 0, 3)
	est, err := (DirectMethod{Model: perfectModel{}}).Estimate(pol, ds)
	if err != nil {
		t.Fatal(err)
	}
	want := truth(pol, 4)
	if math.Abs(est.Value-want) > 0.01 {
		t.Errorf("dm = %v, truth = %v", est.Value, want)
	}
}

func TestDirectMethodInheritsModelBias(t *testing.T) {
	r := stats.NewRand(9)
	ds := genUniformLog(r, 20000, 4)
	pol := always(1)
	est, _ := (DirectMethod{Model: biasedModel{}}).Estimate(pol, ds)
	want := truth(pol, 4)
	if math.Abs(est.Value-want-0.2) > 0.01 {
		t.Errorf("dm bias should be +0.2: est %v truth %v", est.Value, want)
	}
}

func TestDirectMethodRequiresModel(t *testing.T) {
	ds := core.Dataset{{Context: core.Context{NumActions: 2}, Propensity: 0.5}}
	if _, err := (DirectMethod{}).Estimate(always(0), ds); err == nil {
		t.Error("nil model should fail")
	}
	if _, err := (DirectMethod{Model: perfectModel{}}).Estimate(always(0), nil); !errors.Is(err, core.ErrNoData) {
		t.Error("empty data should fail with ErrNoData")
	}
}

func TestDoublyRobustCorrectsBiasedModel(t *testing.T) {
	r := stats.NewRand(10)
	ds := genUniformLog(r, 50000, 4)
	pol := thresholdPolicy(0.4, 1, 2)
	want := truth(pol, 4)
	dm, _ := (DirectMethod{Model: biasedModel{}}).Estimate(pol, ds)
	dr, err := (DoublyRobust{Model: biasedModel{}}).Estimate(pol, ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dm.Value-want) < 0.15 {
		t.Fatalf("test setup broken: dm should be biased, got %v vs %v", dm.Value, want)
	}
	if math.Abs(dr.Value-want) > 3*dr.StdErr+0.01 {
		t.Errorf("dr = %v, truth = %v (se %v)", dr.Value, want, dr.StdErr)
	}
}

func TestDoublyRobustLowerVarianceWithGoodModel(t *testing.T) {
	r := stats.NewRand(11)
	ds := genUniformLog(r, 20000, 6)
	pol := always(5)
	ips, _ := (IPS{}).Estimate(pol, ds)
	dr, _ := (DoublyRobust{Model: perfectModel{}}).Estimate(pol, ds)
	if dr.StdErr >= ips.StdErr/2 {
		t.Errorf("dr with perfect model should slash variance: %v vs ips %v", dr.StdErr, ips.StdErr)
	}
}

func TestDoublyRobustValidation(t *testing.T) {
	if _, err := (DoublyRobust{Model: perfectModel{}}).Estimate(always(0), nil); !errors.Is(err, core.ErrNoData) {
		t.Error("empty data should fail")
	}
	ds := core.Dataset{{Context: core.Context{Features: core.Vector{0}, NumActions: 2}, Propensity: 0.5}}
	if _, err := (DoublyRobust{}).Estimate(always(0), ds); err == nil {
		t.Error("nil model should fail")
	}
	bad := core.Dataset{{Context: core.Context{Features: core.Vector{0}, NumActions: 2}, Propensity: 0}}
	if _, err := (DoublyRobust{Model: perfectModel{}}).Estimate(always(0), bad); err == nil {
		t.Error("zero propensity should fail")
	}
}

func TestEstimatorNames(t *testing.T) {
	for _, pair := range []struct {
		got, want string
	}{
		{IPS{}.Name(), "ips"},
		{SNIPS{}.Name(), "snips"},
		{DirectMethod{}.Name(), "dm"},
		{DoublyRobust{}.Name(), "dr"},
		{TrajectoryIS{}.Name(), "traj-is"},
		{PerDecisionIS{}.Name(), "pd-is"},
	} {
		if pair.got != pair.want {
			t.Errorf("name = %q, want %q", pair.got, pair.want)
		}
	}
	if (ClippedIPS{Max: 10}).Name() == "" {
		t.Error("clipped name empty")
	}
}

func TestEstimateConfidenceInterval(t *testing.T) {
	e := Estimate{Value: 1, StdErr: 0.1, N: 100}
	iv := e.ConfidenceInterval(0.05)
	if !iv.Contains(1) {
		t.Error("CI must contain the point")
	}
	if math.Abs(iv.Width()-2*1.96*0.1) > 0.01 {
		t.Errorf("95%% CI width = %v, want ≈%v", iv.Width(), 2*1.96*0.1)
	}
	if (Estimate{Value: 2}).ConfidenceInterval(0.05).Width() != 0 {
		t.Error("zero stderr should give zero-width CI")
	}
}

func TestEstimateString(t *testing.T) {
	if (Estimate{Value: 1.5, N: 10}).String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestEffectiveSampleSize(t *testing.T) {
	// On-policy (uniform candidate over uniform logging): every weight is
	// 1, so ESS = N exactly.
	r := stats.NewRand(50)
	ds := genUniformLog(r, 5000, 4)
	onPolicy, err := (IPS{}).Estimate(uniformCandidate{k: 4}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(onPolicy.ESS-float64(onPolicy.N)) > 1e-6 {
		t.Errorf("on-policy ESS = %v, want N = %d", onPolicy.ESS, onPolicy.N)
	}
	// A deterministic candidate over K=4 uniform logging matches 1/4 of
	// the data with weight 4: ESS = (N·1)²/(N/4·16) = N/4.
	det, err := (IPS{}).Estimate(always(2), ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(det.ESS-float64(det.N)/4)/float64(det.N) > 0.05 {
		t.Errorf("deterministic ESS = %v, want ≈N/4 = %v", det.ESS, float64(det.N)/4)
	}
	// SNIPS reports the same diagnostic.
	sn, err := (SNIPS{}).Estimate(always(2), ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sn.ESS-det.ESS) > 1e-6 {
		t.Errorf("snips ESS %v != ips ESS %v", sn.ESS, det.ESS)
	}
}

// uniformCandidate is an allocation-free uniform stochastic policy.
type uniformCandidate struct{ k int }

func (u uniformCandidate) Act(ctx *core.Context) core.Action { return 0 }
func (u uniformCandidate) Distribution(ctx *core.Context) []float64 {
	d := make([]float64, u.k)
	for i := range d {
		d[i] = 1 / float64(u.k)
	}
	return d
}

// TestEstimateWeightDiagnostics checks the MeanWeight/ClipFraction health
// fields against hand-computable values on a uniform log.
func TestEstimateWeightDiagnostics(t *testing.T) {
	r := stats.NewRand(7)
	const k = 4
	ds := genUniformLog(r, 8000, k)

	// A deterministic candidate over uniform-1/k logging has weight k on
	// matches and 0 elsewhere, so the mean weight is k·matchRate ≈ 1.
	est, err := (IPS{}).Estimate(always(1), ds)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := float64(k) * float64(est.Matches) / float64(est.N)
	if math.Abs(est.MeanWeight-wantMean) > 1e-9 {
		t.Errorf("mean weight = %v, want %v", est.MeanWeight, wantMean)
	}
	if est.ClipFraction != 0 {
		t.Errorf("unclipped estimator reports clip fraction %v", est.ClipFraction)
	}

	// Clipping at 2 hits exactly the matched datapoints (weight 4 > 2),
	// and the post-clip mean weight shrinks accordingly.
	cl, err := (ClippedIPS{Max: 2}).Estimate(always(1), ds)
	if err != nil {
		t.Fatal(err)
	}
	wantFrac := float64(cl.Matches) / float64(cl.N)
	if math.Abs(cl.ClipFraction-wantFrac) > 1e-9 {
		t.Errorf("clip fraction = %v, want %v", cl.ClipFraction, wantFrac)
	}
	if math.Abs(cl.MeanWeight-2*wantFrac) > 1e-9 {
		t.Errorf("clipped mean weight = %v, want %v", cl.MeanWeight, 2*wantFrac)
	}
	if cl.MaxWeight != 2 {
		t.Errorf("clipped max weight = %v, want 2", cl.MaxWeight)
	}

	// SNIPS carries the same raw-weight diagnostics as IPS.
	sn, err := (SNIPS{}).Estimate(always(1), ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sn.MeanWeight-est.MeanWeight) > 1e-9 || sn.ClipFraction != 0 {
		t.Errorf("snips diagnostics %v/%v != ips %v/0", sn.MeanWeight, sn.ClipFraction, est.MeanWeight)
	}

	// DR now reports ESS over its correction weights, matching IPS's.
	dr := DoublyRobust{Model: nilModel{}}
	de, err := dr.Estimate(always(1), ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(de.ESS-est.ESS) > 1e-6 {
		t.Errorf("dr ESS = %v, want %v", de.ESS, est.ESS)
	}
	if math.Abs(de.MeanWeight-est.MeanWeight) > 1e-9 {
		t.Errorf("dr mean weight = %v, want %v", de.MeanWeight, est.MeanWeight)
	}
}

// nilModel predicts zero reward everywhere (reduces DR to IPS).
type nilModel struct{}

func (nilModel) Predict(*core.Context, core.Action) float64 { return 0 }
