package ope

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

// genQuantileWorld logs uniform over 2 actions; rewards are exponential
// with action-dependent mean, so tails differ sharply across actions.
func genQuantileWorld(seed int64, n int) core.Dataset {
	r := stats.NewRand(seed)
	ds := make(core.Dataset, n)
	for i := range ds {
		a := core.Action(r.Intn(2))
		mean := 1.0
		if a == 1 {
			mean = 3.0
		}
		ds[i] = core.Datapoint{
			Context:    core.Context{Features: core.Vector{1}, NumActions: 2},
			Action:     a,
			Reward:     r.ExpFloat64() * mean,
			Propensity: 0.5,
		}
	}
	return ds
}

func TestQuantileIPSMatchesTrueQuantile(t *testing.T) {
	ds := genQuantileWorld(1, 200000)
	for _, c := range []struct {
		a    core.Action
		mean float64
	}{{0, 1}, {1, 3}} {
		for _, q := range []float64{0.5, 0.9, 0.99} {
			est, err := (QuantileIPS{Q: q}).Estimate(always(c.a), ds)
			if err != nil {
				t.Fatal(err)
			}
			// Exponential quantile: -mean·ln(1-q).
			want := -c.mean * math.Log(1-q)
			if math.Abs(est.Value-want)/want > 0.1 {
				t.Errorf("action %d q%.2f = %v, want %v", c.a, q, est.Value, want)
			}
		}
	}
}

func TestQuantileIPSMedianOfMixture(t *testing.T) {
	// A stochastic candidate mixes both actions' distributions; the
	// weighted quantile should track the mixture, not either component.
	ds := genQuantileWorld(2, 200000)
	est, err := (QuantileIPS{Q: 0.5}).Estimate(uniformStochastic{k: 2}, ds)
	if err != nil {
		t.Fatal(err)
	}
	// Mixture median of Exp(1)/Exp(3) 50/50: solve e^−m + e^−m/3 = 1
	// numerically ≈ 1.153.
	want := 1.153
	if math.Abs(est.Value-want) > 0.08 {
		t.Errorf("mixture median = %v, want ≈%v", est.Value, want)
	}
}

func TestQuantileIPSP99IsTailSensitive(t *testing.T) {
	// The point of the estimator: two policies with similar means can
	// have very different tails. Action 1's p99 must dwarf action 0's.
	ds := genQuantileWorld(3, 100000)
	p99a, err := (QuantileIPS{Q: 0.99}).Estimate(always(0), ds)
	if err != nil {
		t.Fatal(err)
	}
	p99b, err := (QuantileIPS{Q: 0.99}).Estimate(always(1), ds)
	if err != nil {
		t.Fatal(err)
	}
	if p99b.Value < 2.5*p99a.Value {
		t.Errorf("tail separation too small: %v vs %v", p99a.Value, p99b.Value)
	}
}

func TestQuantileIPSValidation(t *testing.T) {
	ds := genQuantileWorld(4, 100)
	if _, err := (QuantileIPS{Q: 0.5}).Estimate(always(0), nil); !errors.Is(err, core.ErrNoData) {
		t.Error("empty should fail")
	}
	if _, err := (QuantileIPS{Q: 0}).Estimate(always(0), ds); err == nil {
		t.Error("q=0 should fail")
	}
	if _, err := (QuantileIPS{Q: 1}).Estimate(always(0), ds); err == nil {
		t.Error("q=1 should fail")
	}
	bad := core.Dataset{{Context: core.Context{NumActions: 2}, Propensity: 0}}
	if _, err := (QuantileIPS{Q: 0.5}).Estimate(always(0), bad); err == nil {
		t.Error("zero propensity should fail")
	}
	// No overlap.
	one := core.Dataset{{Context: core.Context{NumActions: 2}, Action: 0, Propensity: 0.5}}
	if _, err := (QuantileIPS{Q: 0.5}).Estimate(always(1), one); !errors.Is(err, ErrNoOverlap) {
		t.Error("no overlap should fail with ErrNoOverlap")
	}
	if (QuantileIPS{Q: 0.99}).Name() == "" {
		t.Error("name empty")
	}
}

func TestQuantileIPSClip(t *testing.T) {
	ds := genQuantileWorld(5, 5000)
	est, err := (QuantileIPS{Q: 0.9, Clip: 1.5}).Estimate(always(0), ds)
	if err != nil {
		t.Fatal(err)
	}
	if est.MaxWeight > 1.5 {
		t.Errorf("max weight %v exceeds clip", est.MaxWeight)
	}
}

func TestQuantileIPSValueInsideObservedRange(t *testing.T) {
	// Self-normalized form: the estimate is always an observed reward.
	ds := genQuantileWorld(6, 1000)
	est, err := (QuantileIPS{Q: 0.75}).Estimate(always(1), ds)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := ds.RewardRange()
	if est.Value < lo || est.Value > hi {
		t.Errorf("estimate %v outside observed range [%v, %v]", est.Value, lo, hi)
	}
	if est.StdErr < 0 {
		t.Errorf("resolution band negative: %v", est.StdErr)
	}
}
