package ope

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/stats"
)

// genQuickDataset builds a small, valid dataset from fuzz inputs.
func genQuickDataset(seed int64, n int, k int) core.Dataset {
	if n < 1 {
		n = 1
	}
	if n > 400 {
		n = 400
	}
	if k < 2 {
		k = 2
	}
	if k > 6 {
		k = 6
	}
	r := stats.NewRand(seed)
	ds := make(core.Dataset, n)
	for i := range ds {
		ds[i] = core.Datapoint{
			Context:    core.Context{Features: core.Vector{r.Float64()}, NumActions: k},
			Action:     core.Action(r.Intn(k)),
			Reward:     r.Float64()*4 - 2,
			Propensity: 1 / float64(k),
		}
	}
	return ds
}

// Property: IPS is equivariant to reward scaling — scaling every reward by
// c scales the estimate by exactly c.
func TestIPSScaleEquivarianceProperty(t *testing.T) {
	f := func(seed int64, n uint16, cRaw int8) bool {
		c := float64(cRaw%7) + 0.5
		ds := genQuickDataset(seed, int(n%300)+10, 3)
		pol := always(1)
		base, err := (IPS{}).Estimate(pol, ds)
		if err != nil {
			return false
		}
		scaled := make(core.Dataset, len(ds))
		copy(scaled, ds)
		for i := range scaled {
			scaled[i].Reward *= c
		}
		got, err := (IPS{}).Estimate(pol, scaled)
		if err != nil {
			return false
		}
		return math.Abs(got.Value-c*base.Value) < 1e-9*(1+math.Abs(c*base.Value))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: evaluating the logging policy itself (uniform stochastic) with
// IPS returns exactly the empirical mean reward — every weight is 1.
func TestIPSOnPolicyIdentityProperty(t *testing.T) {
	f := func(seed int64, n uint16, kRaw uint8) bool {
		k := int(kRaw%4) + 2
		ds := genQuickDataset(seed, int(n%300)+10, k)
		est, err := (IPS{}).Estimate(uniformStochastic{k: k}, ds)
		if err != nil {
			return false
		}
		mean := 0.0
		for i := range ds {
			mean += ds[i].Reward
		}
		mean /= float64(len(ds))
		return math.Abs(est.Value-mean) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: doubly robust with a zero model degenerates to plain IPS.
func TestDRZeroModelEqualsIPSProperty(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		ds := genQuickDataset(seed, int(n%300)+10, 3)
		pol := always(2)
		ips, err := (IPS{}).Estimate(pol, ds)
		if err != nil {
			return false
		}
		dr, err := (DoublyRobust{Model: zeroModel{}}).Estimate(pol, ds)
		if err != nil {
			return false
		}
		return math.Abs(ips.Value-dr.Value) < 1e-9 &&
			math.Abs(ips.StdErr-dr.StdErr) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SNIPS estimates always lie within [min, max] of the rewards of
// matched datapoints — it is a weighted average.
func TestSNIPSBoundedByMatchedRewardsProperty(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		ds := genQuickDataset(seed, int(n%300)+10, 3)
		pol := always(0)
		lo, hi := math.Inf(1), math.Inf(-1)
		matched := false
		for i := range ds {
			if ds[i].Action == 0 {
				matched = true
				if ds[i].Reward < lo {
					lo = ds[i].Reward
				}
				if ds[i].Reward > hi {
					hi = ds[i].Reward
				}
			}
		}
		est, err := (SNIPS{}).Estimate(pol, ds)
		if !matched {
			return err != nil // ErrNoOverlap expected
		}
		if err != nil {
			return false
		}
		return est.Value >= lo-1e-9 && est.Value <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: on singleton trajectories (pure CB data), per-decision IS and
// trajectory IS both coincide with IPS.
func TestSingletonTrajectoriesCollapseToIPSProperty(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		ds := genQuickDataset(seed, int(n%300)+10, 3)
		pol := always(1)
		ips, err := (IPS{}).Estimate(pol, ds)
		if err != nil {
			return false
		}
		tis, err := (TrajectoryIS{Gamma: 1}).Estimate(pol, ds)
		if err != nil {
			return false
		}
		pdis, err := (PerDecisionIS{Gamma: 1}).Estimate(pol, ds)
		if err != nil {
			return false
		}
		return math.Abs(ips.Value-tis.Value) < 1e-9 && math.Abs(ips.Value-pdis.Value) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: clipping never increases the maximum weight, and with clip ≥
// the action count (the natural max under uniform logging) it is exact.
func TestClipMonotoneProperty(t *testing.T) {
	f := func(seed int64, n uint16, clipRaw uint8) bool {
		ds := genQuickDataset(seed, int(n%300)+10, 4)
		pol := always(3)
		clip := float64(clipRaw%8) + 0.5
		plain, err := (IPS{}).Estimate(pol, ds)
		if err != nil {
			return false
		}
		clipped, err := (ClippedIPS{Max: clip}).Estimate(pol, ds)
		if err != nil {
			return false
		}
		if clipped.MaxWeight > clip+1e-12 {
			return false
		}
		if clip >= 4 {
			return math.Abs(clipped.Value-plain.Value) < 1e-9
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the Estimate's Matches count equals the number of datapoints
// where the deterministic candidate picked the logged action.
func TestMatchesCountProperty(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		ds := genQuickDataset(seed, int(n%300)+10, 3)
		pol := always(2)
		want := 0
		for i := range ds {
			if ds[i].Action == 2 {
				want++
			}
		}
		est, err := (IPS{}).Estimate(pol, ds)
		if err != nil {
			return false
		}
		return est.Matches == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
