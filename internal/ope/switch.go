package ope

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/stats"
)

// Switch is the SWITCH estimator (Wang, Agarwal, Dudík 2017): importance
// sampling where it is trustworthy, the model where it is not. For each
// context, actions whose importance ratio π(a|x)/μ(a|x) is at most τ are
// scored by IPS; the rest are scored by the reward model:
//
//	v = (1/N) Σ_t [ w_t·r_t·1{w_t ≤ τ}
//	              + Σ_a π(a|x_t)·model(x_t,a)·1{π(a|x_t)/μ(a|x_t) > τ} ]
//
// Unlike clipping (which truncates the heavy tail and eats the bias),
// SWITCH substitutes an informed guess for the truncated mass. τ→∞
// recovers IPS; τ→0 recovers the direct method.
//
// Computing the indicator for actions that were NOT logged requires the
// full logging distribution μ(·|x) — propensities of logged actions alone
// are not enough — so Switch takes the logging policy explicitly. In the
// harvesting setting this is exactly the "known from code inspection" case
// (e.g. uniform random eviction or routing).
type Switch struct {
	// Model predicts rewards for the model-scored region.
	Model RewardModel
	// Logging is the deployed policy's action distribution μ(·|x).
	Logging core.StochasticPolicy
	// Tau is the weight threshold (default 10 if 0).
	Tau float64
}

// Name implements Estimator.
func (s Switch) Name() string { return fmt.Sprintf("switch-%.3g", s.tau()) }

func (s Switch) tau() float64 {
	if s.Tau <= 0 {
		return 10
	}
	return s.Tau
}

// Estimate implements Estimator.
func (s Switch) Estimate(policy core.Policy, data core.Dataset) (Estimate, error) {
	if len(data) == 0 {
		return Estimate{}, core.ErrNoData
	}
	if s.Model == nil {
		return Estimate{}, fmt.Errorf("ope: switch requires a reward model")
	}
	if s.Logging == nil {
		return Estimate{}, fmt.Errorf("ope: switch requires the logging policy's distribution")
	}
	tau := s.tau()
	terms := make([]float64, len(data))
	sum := 0.0
	matches := 0
	maxW := 0.0
	for i := range data {
		d := &data[i]
		if !(d.Propensity > 0) {
			return Estimate{}, fmt.Errorf("ope: datapoint %d has propensity %v; %w",
				i, d.Propensity, errBadPropensity)
		}
		mu := s.Logging.Distribution(&d.Context)
		pi := core.ActionProb(policy, &d.Context, d.Action)
		w := pi / d.Propensity
		if pi > 0 {
			matches++
		}
		if w > maxW {
			maxW = w
		}
		t := 0.0
		if w <= tau {
			t = w * d.Reward
		}
		// Model term for every action in the heavy region.
		for a := 0; a < d.Context.NumActions; a++ {
			pa := core.ActionProb(policy, &d.Context, core.Action(a))
			if pa == 0 {
				continue
			}
			var ratio float64
			if a < len(mu) && mu[a] > 0 {
				ratio = pa / mu[a]
			} else {
				ratio = math.Inf(1) // unexplored action: always model-scored
			}
			if ratio > tau {
				t += pa * s.Model.Predict(&d.Context, core.Action(a))
			}
		}
		terms[i] = t
		sum += t
	}
	n := float64(len(data))
	return Estimate{
		Value:     sum / n,
		StdErr:    math.Sqrt(stats.Variance(terms) / n),
		N:         len(data),
		Matches:   matches,
		MaxWeight: maxW,
	}, nil
}
