package ope

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEq1ErrorShrinksWithN(t *testing.T) {
	e1 := Eq1Error(2, 0.04, 1e5, 1e6, 0.05)
	e2 := Eq1Error(2, 0.04, 4e5, 1e6, 0.05)
	if !(e2 < e1) {
		t.Errorf("error should shrink with N: %v !< %v", e2, e1)
	}
	if math.Abs(e2-e1/2) > 1e-12 {
		t.Errorf("4x N should halve the error: %v vs %v", e2, e1/2)
	}
}

func TestEq1ErrorDoublingEpsHalvesData(t *testing.T) {
	// The paper: "doubling ε from 0.02 to 0.04 halves the data required".
	n1 := Eq1RequiredN(2, 0.02, 1e6, 0.05, 0.05)
	n2 := Eq1RequiredN(2, 0.04, 1e6, 0.05, 0.05)
	if math.Abs(n1/n2-2) > 1e-9 {
		t.Errorf("n(ε=0.02)/n(ε=0.04) = %v, want 2", n1/n2)
	}
}

func TestEq1ErrorLogarithmicInK(t *testing.T) {
	// Squaring K should only double log K (for delta=1): check the error
	// grows far slower than sqrt(K).
	e1 := Eq1Error(2, 0.04, 1e6, 1e3, 0.05)
	e2 := Eq1Error(2, 0.04, 1e6, 1e6, 0.05)
	if e2/e1 > 1.5 {
		t.Errorf("K x1000 should barely move the error: %v -> %v", e1, e2)
	}
}

func TestEq1RoundTrip(t *testing.T) {
	c, eps, k, delta, target := 2.0, 0.04, 1e6, 0.05, 0.03
	n := Eq1RequiredN(c, eps, k, delta, target)
	got := Eq1Error(c, eps, n, k, delta)
	if math.Abs(got-target) > 1e-9 {
		t.Errorf("round trip error = %v, want %v", got, target)
	}
}

func TestABRoundTrip(t *testing.T) {
	c, k, delta, target := 1.0, 100.0, 0.05, 0.05
	n := ABRequiredN(c, k, delta, target)
	got := ABError(c, k, n, delta)
	if math.Abs(got-target) > 1e-9 {
		t.Errorf("round trip error = %v, want %v", got, target)
	}
}

func TestCBExponentiallyMoreEfficientThanAB(t *testing.T) {
	// The headline claim behind Fig. 1: at equal N and large K, CB error
	// is exponentially smaller; equivalently required N diverges.
	c, eps, delta, target := 2.0, 0.04, 0.01, 0.05
	for _, k := range []float64{1e2, 1e4, 1e6, 1e8} {
		cb := Eq1RequiredN(c, eps, k, delta, target)
		ab := ABRequiredN(1, k, delta, target)
		if cb >= ab {
			t.Errorf("K=%g: CB needs %g, A/B needs %g — CB should be cheaper", k, cb, ab)
		}
	}
	// Ratio should grow with K (A/B scales ~K, CB ~log K).
	r1 := ABRequiredN(1, 1e4, delta, target) / Eq1RequiredN(c, eps, 1e4, delta, target)
	r2 := ABRequiredN(1, 1e8, delta, target) / Eq1RequiredN(c, eps, 1e8, delta, target)
	if r2 <= r1 {
		t.Errorf("advantage should grow with K: %v -> %v", r1, r2)
	}
}

func TestBoundsDegenerateInputs(t *testing.T) {
	if !math.IsInf(Eq1Error(0, 0.1, 100, 10, 0.05), 1) {
		t.Error("c=0 should be Inf")
	}
	if !math.IsInf(Eq1Error(1, 0, 100, 10, 0.05), 1) {
		t.Error("eps=0 should be Inf")
	}
	if !math.IsInf(Eq1RequiredN(1, 0.1, 10, 0.05, 0), 1) {
		t.Error("target=0 should be Inf")
	}
	if !math.IsInf(ABError(1, 10, 0, 0.05), 1) {
		t.Error("n=0 should be Inf")
	}
	if !math.IsInf(ABRequiredN(1, 10, 2, 0.05), 1) {
		t.Error("delta>1 should be Inf")
	}
}

func TestHighConfidenceIntervalContainsPoint(t *testing.T) {
	e := Estimate{Value: 0.5, StdErr: 0.02, N: 1000}
	iv := HighConfidenceInterval(e, 25, 0.05)
	if !iv.Contains(e.Value) {
		t.Error("interval must contain the point")
	}
	if iv.Width() <= 0 {
		t.Error("interval must have positive width")
	}
	// With tiny variance, the Bernstein interval should be far narrower
	// than Hoeffding's range/√N radius.
	hoeff := 25 * math.Sqrt(math.Log(2/0.05)/(2*1000.0))
	if iv.Width()/2 >= hoeff {
		t.Errorf("expected Bernstein to win: radius %v vs hoeffding %v", iv.Width()/2, hoeff)
	}
}

func TestHighConfidenceIntervalEmptyEstimate(t *testing.T) {
	iv := HighConfidenceInterval(Estimate{}, 1, 0.05)
	if !math.IsInf(iv.Lo, -1) || !math.IsInf(iv.Hi, 1) {
		t.Error("N=0 should give an infinite interval")
	}
}

// Property: Eq1 error is monotone decreasing in N and eps, increasing in K.
func TestEq1MonotoneProperty(t *testing.T) {
	f := func(rawN, rawEps, rawK uint32) bool {
		n := float64(rawN%1000000) + 1
		eps := float64(rawEps%99+1) / 100
		k := float64(rawK%100000) + 1
		base := Eq1Error(2, eps, n, k, 0.05)
		if Eq1Error(2, eps, n*2, k, 0.05) > base {
			return false
		}
		if Eq1Error(2, eps/2, n, k, 0.05) < base {
			return false
		}
		if Eq1Error(2, eps, n, k*10, 0.05) < base {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
