package ope

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/stats"
)

func TestAlignedDRMatchesDoublyRobustWithFixedModel(t *testing.T) {
	r := stats.NewRand(1)
	ds := genUniformLog(r, 5000, 3)
	pol := thresholdPolicy(0.5, 0, 2)
	// Build aligned predictions from the same fixed model.
	pred := make([][]float64, len(ds))
	for i := range ds {
		row := make([]float64, 3)
		for a := 0; a < 3; a++ {
			row[a] = (perfectModel{}).Predict(&ds[i].Context, core.Action(a))
		}
		pred[i] = row
	}
	a, err := AlignedDR(pol, ds, pred, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (DoublyRobust{Model: perfectModel{}}).Estimate(pol, ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Value-b.Value) > 1e-9 {
		t.Errorf("aligned %v != in-place %v", a.Value, b.Value)
	}
}

func TestAlignedDRValidation(t *testing.T) {
	r := stats.NewRand(2)
	ds := genUniformLog(r, 10, 3)
	if _, err := AlignedDR(always(0), nil, nil, 0); !errors.Is(err, core.ErrNoData) {
		t.Error("empty should fail")
	}
	if _, err := AlignedDR(always(0), ds, make([][]float64, 3), 0); err == nil {
		t.Error("misaligned predictions should fail")
	}
	short := make([][]float64, len(ds))
	for i := range short {
		short[i] = []float64{1} // fewer than NumActions
	}
	if _, err := AlignedDR(always(0), ds, short, 0); err == nil {
		t.Error("short prediction rows should fail")
	}
	bad := core.Dataset{{Context: core.Context{NumActions: 2}, Propensity: 0}}
	if _, err := AlignedDR(always(0), bad, [][]float64{{0, 0}}, 0); err == nil {
		t.Error("zero propensity should fail")
	}
}

// TestCrossFitContract pins down what cross-fitting does and does not buy:
//
//   - For a FIXED candidate policy, cross-fit DR stays accurate even with a
//     model class rich enough to chase noise.
//   - Scoring a model-derived policy with the same in-sample model that
//     chose it is optimistically biased (the winner's curse: the greedy
//     policy picks each context's luckiest noise draw). Cross-fitting
//     reduces but cannot eliminate that optimism, because the *policy*
//     itself was selected on the full data — which is why the paper (and
//     this repository's experiments) score learned policies on held-out
//     data, never on the training log.
func TestCrossFitContract(t *testing.T) {
	const (
		n   = 400
		dim = 60
		k   = 2
	)
	// True structure: action 1 pays 0.2, action 0 pays 0 — plus unit
	// noise the high-dimensional model will chase.
	actionMean := func(a core.Action) float64 {
		if a == 1 {
			return 0.2
		}
		return 0
	}
	r := stats.NewRand(7)
	ds := make(core.Dataset, n)
	for i := range ds {
		x := make(core.Vector, dim)
		for j := range x {
			x[j] = r.NormFloat64()
		}
		a := core.Action(r.Intn(k))
		ds[i] = core.Datapoint{
			Context:    core.Context{Features: x, NumActions: k},
			Action:     a,
			Reward:     actionMean(a) + r.NormFloat64(),
			Propensity: 1.0 / k,
		}
	}
	opts := learn.FitOptions{Lambda: 1e-6, NumActions: k}
	model, err := learn.FitRewardModel(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	pol := model.GreedyPolicy(false) // the policy the model itself chose

	// No policy can truly earn more than max_a mean = 0.2.
	const truthCeiling = 0.2

	// In-sample direct method: the winner's curse in action.
	inDM, err := (DirectMethod{Model: model}).Estimate(pol, ds)
	if err != nil {
		t.Fatal(err)
	}
	if inDM.Value < truthCeiling+0.08 {
		t.Fatalf("test setup failed to overfit: in-sample DM %v not optimistic", inDM.Value)
	}

	// Cross-fit direct method: out-of-fold predictions of the chosen
	// action shed part of the optimism (the rest is the policy's own
	// data-dependence, which only a holdout removes).
	pred, err := learn.CrossFitRewardPredictions(ds, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	cfDM := 0.0
	for i := range ds {
		cfDM += pred[i][pol.Act(&ds[i].Context)]
	}
	cfDM /= float64(n)
	if cfDM >= inDM.Value {
		t.Errorf("cross-fit DM %v should be less optimistic than in-sample %v", cfDM, inDM.Value)
	}

	// The clean guarantee: a FIXED policy, evaluated with cross-fit DR
	// under the same overfit-prone model class, lands on its true value.
	fixed := always(1)
	cfDR, err := AlignedDR(fixed, ds, pred, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cfDR.Value-truthCeiling) > 4*cfDR.StdErr+0.02 {
		t.Errorf("cross-fit DR of the fixed policy = %v ± %v, want ≈%v",
			cfDR.Value, cfDR.StdErr, truthCeiling)
	}
	t.Logf("in-sample DM %.3f (optimistic) | cross-fit DM %.3f | fixed-policy cross-fit DR %.3f ± %.3f | truth(always-1) = %.2f",
		inDM.Value, cfDM, cfDR.Value, cfDR.StdErr, truthCeiling)
}

func TestCrossFitPredictionsValidation(t *testing.T) {
	r := stats.NewRand(3)
	ds := genUniformLog(r, 20, 2)
	if _, err := learn.CrossFitRewardPredictions(nil, 2, learn.FitOptions{}); !errors.Is(err, core.ErrNoData) {
		t.Error("empty should fail")
	}
	if _, err := learn.CrossFitRewardPredictions(ds, 1, learn.FitOptions{}); err == nil {
		t.Error("folds<2 should fail")
	}
	if _, err := learn.CrossFitRewardPredictions(ds, 21, learn.FitOptions{}); err == nil {
		t.Error("folds>n should fail")
	}
	pred, err := learn.CrossFitRewardPredictions(ds, 4, learn.FitOptions{NumActions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != len(ds) {
		t.Fatalf("pred rows = %d", len(pred))
	}
	for i, row := range pred {
		if len(row) != 2 {
			t.Fatalf("row %d has %d actions", i, len(row))
		}
	}
}
