package ope_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ope"
	"repro/internal/stats"
)

// ExampleIPS shows the heart of the methodology: evaluating a policy that
// was never deployed, from a randomized system's log.
func ExampleIPS() {
	// A deployed system chose uniformly between 2 actions and logged
	// ⟨x, a, r, p⟩. Action 1 secretly earns twice as much.
	r := stats.NewRand(7)
	var logged core.Dataset
	for i := 0; i < 20000; i++ {
		a := core.Action(r.Intn(2))
		reward := 0.25
		if a == 1 {
			reward = 0.5
		}
		logged = append(logged, core.Datapoint{
			Context:    core.Context{NumActions: 2},
			Action:     a,
			Reward:     reward,
			Propensity: 0.5,
		})
	}
	// Evaluate the candidate "always play action 1" offline.
	candidate := core.PolicyFunc(func(*core.Context) core.Action { return 1 })
	est, err := (ope.IPS{}).Estimate(candidate, logged)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("estimated reward: %.2f (true: 0.50)\n", est.Value)
	// Output:
	// estimated reward: 0.50 (true: 0.50)
}

// ExampleSelectBest evaluates several candidates simultaneously with
// union-bound confidence intervals — the Eq. 1 capability.
func ExampleSelectBest() {
	r := stats.NewRand(3)
	var logged core.Dataset
	means := []float64{0.2, 0.9, 0.5}
	for i := 0; i < 30000; i++ {
		a := core.Action(r.Intn(3))
		logged = append(logged, core.Datapoint{
			Context:    core.Context{NumActions: 3},
			Action:     a,
			Reward:     means[a] + (r.Float64()-0.5)*0.1,
			Propensity: 1.0 / 3,
		})
	}
	candidates := make([]core.Policy, 3)
	for a := range candidates {
		a := a
		candidates[a] = core.PolicyFunc(func(*core.Context) core.Action { return core.Action(a) })
	}
	sel, err := ope.SelectBest(nil, candidates, logged, 0, 0.05, false)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("best candidate: %d (separated: %v)\n", sel.Best.Index, sel.Separated)
	// Output:
	// best candidate: 1 (separated: true)
}

// ExampleEq1Error reproduces the paper's data-requirement arithmetic.
func ExampleEq1Error() {
	// Evaluating a million policies on 1.7M datapoints with ε = 0.04.
	err := ope.Eq1Error(2, 0.04, 1.7e6, 1e6, 0.05)
	fmt.Printf("simultaneous error: %.3f\n", err)
	// A/B testing the same million policies on the same data:
	ab := ope.ABError(1, 1e6, 1.7e6, 0.05)
	fmt.Printf("A/B error: %.0f (useless)\n", ab)
	// Output:
	// simultaneous error: 0.022
	// A/B error: 13 (useless)
}
