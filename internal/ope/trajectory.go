package ope

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/stats"
)

// TrajectoryIS estimates the average per-trajectory return of a candidate
// policy by weighting each whole trajectory by the product of per-step
// importance ratios — the §5 "estimators that account for long-term effects"
// (reweighing data by the probability of matching *sequences* of actions):
//
//	v(π) = (1/M) Σ_traj [ Π_t π(a_t|x_t)/p_t ] · G(traj)
//
// where G is the (optionally discounted) return. Unbiased under full support
// but with variance that explodes in the horizon: the probability of a long
// random sequence matching is tiny, exactly the paper's point about why
// these estimators are hard to use. Exposing that variance (via MaxWeight
// and StdErr) is the purpose of this implementation.
type TrajectoryIS struct {
	// Gamma is the per-step discount for the trajectory return; 1 means
	// undiscounted.
	Gamma float64
	// Clip caps the per-trajectory weight product (<= 0 disables).
	Clip float64
}

// Name implements a diagnostic label.
func (t TrajectoryIS) Name() string { return "traj-is" }

// EstimateTrajectories computes the weighted estimate over trajectories.
func (t TrajectoryIS) EstimateTrajectories(policy core.Policy, trajs []core.Trajectory) (Estimate, error) {
	if len(trajs) == 0 {
		return Estimate{}, core.ErrNoData
	}
	gamma := t.Gamma
	if gamma == 0 {
		gamma = 1
	}
	terms := make([]float64, len(trajs))
	sum := 0.0
	matches := 0
	maxW := 0.0
	for i, tr := range trajs {
		w := 1.0
		for j := range tr {
			d := &tr[j]
			if !(d.Propensity > 0) {
				return Estimate{}, fmt.Errorf("ope: trajectory %d step %d has propensity %v; %w",
					i, j, d.Propensity, errBadPropensity)
			}
			w *= core.ActionProb(policy, &d.Context, d.Action) / d.Propensity
			if w == 0 {
				break
			}
		}
		if t.Clip > 0 && w > t.Clip {
			w = t.Clip
		}
		if w > 0 {
			matches++
		}
		if w > maxW {
			maxW = w
		}
		terms[i] = w * tr.Return(gamma)
		sum += terms[i]
	}
	m := float64(len(trajs))
	return Estimate{
		Value:     sum / m,
		StdErr:    math.Sqrt(stats.Variance(terms) / m),
		N:         len(trajs),
		Matches:   matches,
		MaxWeight: maxW,
	}, nil
}

// Estimate implements Estimator by grouping the flat dataset into
// trajectories via core.SplitTrajectories.
func (t TrajectoryIS) Estimate(policy core.Policy, data core.Dataset) (Estimate, error) {
	return t.EstimateTrajectories(policy, core.SplitTrajectories(data))
}

// PerDecisionIS is the per-decision importance sampling refinement: the
// reward at step t is weighted only by the ratios of steps up to t, not the
// whole trajectory. Same expectation as TrajectoryIS, strictly lower
// variance (Precup 2000).
type PerDecisionIS struct {
	Gamma float64
	Clip  float64
}

// Name implements a diagnostic label.
func (p PerDecisionIS) Name() string { return "pd-is" }

// EstimateTrajectories computes the per-decision weighted estimate.
func (p PerDecisionIS) EstimateTrajectories(policy core.Policy, trajs []core.Trajectory) (Estimate, error) {
	if len(trajs) == 0 {
		return Estimate{}, core.ErrNoData
	}
	gamma := p.Gamma
	if gamma == 0 {
		gamma = 1
	}
	terms := make([]float64, len(trajs))
	sum := 0.0
	matches := 0
	maxW := 0.0
	for i, tr := range trajs {
		w := 1.0
		g := 1.0
		total := 0.0
		matched := false
		for j := range tr {
			d := &tr[j]
			if !(d.Propensity > 0) {
				return Estimate{}, fmt.Errorf("ope: trajectory %d step %d has propensity %v; %w",
					i, j, d.Propensity, errBadPropensity)
			}
			w *= core.ActionProb(policy, &d.Context, d.Action) / d.Propensity
			if p.Clip > 0 && w > p.Clip {
				w = p.Clip
			}
			if w > maxW {
				maxW = w
			}
			if w > 0 {
				matched = true
			} else {
				break // all later per-decision weights are zero too
			}
			total += g * w * d.Reward
			g *= gamma
		}
		if matched {
			matches++
		}
		terms[i] = total
		sum += total
	}
	m := float64(len(trajs))
	return Estimate{
		Value:     sum / m,
		StdErr:    math.Sqrt(stats.Variance(terms) / m),
		N:         len(trajs),
		Matches:   matches,
		MaxWeight: maxW,
	}, nil
}

// Estimate implements Estimator by grouping the flat dataset into
// trajectories via core.SplitTrajectories.
func (p PerDecisionIS) Estimate(policy core.Policy, data core.Dataset) (Estimate, error) {
	return p.EstimateTrajectories(policy, core.SplitTrajectories(data))
}
