package ope

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

// uniformStochastic is a uniform logging policy exposing its distribution.
type uniformStochastic struct{ k int }

func (u uniformStochastic) Act(ctx *core.Context) core.Action { return 0 }
func (u uniformStochastic) Distribution(ctx *core.Context) []float64 {
	d := make([]float64, u.k)
	for i := range d {
		d[i] = 1 / float64(u.k)
	}
	return d
}

// genTrajectories builds m trajectories of length h with uniform logging
// over k actions; the reward at each step is 1 if action 0 was taken.
func genTrajectories(r *rand.Rand, m, h, k int) []core.Trajectory {
	trs := make([]core.Trajectory, m)
	for i := range trs {
		tr := make(core.Trajectory, h)
		for j := range tr {
			a := core.Action(r.Intn(k))
			rew := 0.0
			if a == 0 {
				rew = 1
			}
			tr[j] = core.Datapoint{
				Context:    core.Context{NumActions: k},
				Action:     a,
				Reward:     rew,
				Propensity: 1 / float64(k),
				Seq:        int64(j),
				Tag:        fmt.Sprintf("t%d", i),
			}
		}
		trs[i] = tr
	}
	return trs
}

func TestTrajectoryISUnbiasedShortHorizon(t *testing.T) {
	r := stats.NewRand(1)
	trs := genTrajectories(r, 60000, 2, 2)
	// Candidate: always action 0 → return = horizon = 2.
	est, err := (TrajectoryIS{Gamma: 1}).EstimateTrajectories(always(0), trs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-2) > 3*est.StdErr+0.02 {
		t.Errorf("traj-is = %v, want 2 (se %v)", est.Value, est.StdErr)
	}
}

func TestPerDecisionISUnbiasedShortHorizon(t *testing.T) {
	r := stats.NewRand(2)
	trs := genTrajectories(r, 60000, 2, 2)
	est, err := (PerDecisionIS{Gamma: 1}).EstimateTrajectories(always(0), trs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-2) > 3*est.StdErr+0.02 {
		t.Errorf("pd-is = %v, want 2 (se %v)", est.Value, est.StdErr)
	}
}

func TestPerDecisionLowerVarianceThanTrajectory(t *testing.T) {
	r := stats.NewRand(3)
	trs := genTrajectories(r, 20000, 6, 2)
	tis, err := (TrajectoryIS{Gamma: 1}).EstimateTrajectories(always(0), trs)
	if err != nil {
		t.Fatal(err)
	}
	pdis, err := (PerDecisionIS{Gamma: 1}).EstimateTrajectories(always(0), trs)
	if err != nil {
		t.Fatal(err)
	}
	if pdis.StdErr >= tis.StdErr {
		t.Errorf("pd-is se %v should beat traj-is se %v", pdis.StdErr, tis.StdErr)
	}
}

func TestTrajectoryVarianceExplodesWithHorizon(t *testing.T) {
	// This is the paper's §5 point: matching long sequences is rare, so
	// the weights (and stderr) blow up with the horizon.
	r := stats.NewRand(4)
	short, _ := (TrajectoryIS{Gamma: 1}).EstimateTrajectories(always(0), genTrajectories(r, 5000, 2, 2))
	long, _ := (TrajectoryIS{Gamma: 1}).EstimateTrajectories(always(0), genTrajectories(r, 5000, 10, 2))
	if long.MaxWeight <= short.MaxWeight {
		t.Errorf("max weight should grow with horizon: %v <= %v", long.MaxWeight, short.MaxWeight)
	}
	// Match fraction should collapse: (1/2)^10 ≈ 0.1% of trajectories.
	frac := float64(long.Matches) / float64(long.N)
	if frac > 0.01 {
		t.Errorf("long-horizon match fraction = %v, want < 1%%", frac)
	}
}

func TestTrajectoryClipCapsWeight(t *testing.T) {
	r := stats.NewRand(5)
	trs := genTrajectories(r, 5000, 8, 2)
	est, err := (TrajectoryIS{Gamma: 1, Clip: 16}).EstimateTrajectories(always(0), trs)
	if err != nil {
		t.Fatal(err)
	}
	if est.MaxWeight > 16 {
		t.Errorf("max weight %v exceeds clip", est.MaxWeight)
	}
}

func TestTrajectoryEstimateFromFlatDataset(t *testing.T) {
	r := stats.NewRand(6)
	trs := genTrajectories(r, 2000, 3, 2)
	flat := core.Flatten(trs)
	a, err := (TrajectoryIS{Gamma: 1}).Estimate(always(0), flat)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (TrajectoryIS{Gamma: 1}).EstimateTrajectories(always(0), trs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Value-b.Value) > 1e-12 {
		t.Errorf("flat vs grouped mismatch: %v vs %v", a.Value, b.Value)
	}
}

func TestTrajectoryEstimatorsValidate(t *testing.T) {
	if _, err := (TrajectoryIS{}).EstimateTrajectories(always(0), nil); !errors.Is(err, core.ErrNoData) {
		t.Error("empty should fail with ErrNoData")
	}
	if _, err := (PerDecisionIS{}).EstimateTrajectories(always(0), nil); !errors.Is(err, core.ErrNoData) {
		t.Error("empty should fail with ErrNoData")
	}
	bad := []core.Trajectory{{{Context: core.Context{NumActions: 2}, Propensity: 0}}}
	if _, err := (TrajectoryIS{}).EstimateTrajectories(always(0), bad); err == nil {
		t.Error("zero propensity should fail")
	}
	if _, err := (PerDecisionIS{}).EstimateTrajectories(always(0), bad); err == nil {
		t.Error("zero propensity should fail")
	}
}

func TestStochasticCandidateUsesExactProbabilities(t *testing.T) {
	// A stochastic candidate identical to the logging policy has all
	// weights exactly 1, so both estimators return the empirical mean
	// return with zero weight-induced variance inflation.
	r := stats.NewRand(7)
	trs := genTrajectories(r, 3000, 4, 2)
	cand := uniformStochastic{k: 2}
	est, err := (TrajectoryIS{Gamma: 1}).EstimateTrajectories(cand, trs)
	if err != nil {
		t.Fatal(err)
	}
	if est.MaxWeight != 1 {
		t.Errorf("on-policy weights should be exactly 1, got max %v", est.MaxWeight)
	}
	var mean stats.Welford
	for _, tr := range trs {
		mean.Add(tr.Return(1))
	}
	if math.Abs(est.Value-mean.Mean()) > 1e-9 {
		t.Errorf("on-policy traj-is %v != empirical %v", est.Value, mean.Mean())
	}
}
