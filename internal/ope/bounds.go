package ope

import (
	"math"

	"repro/internal/stats"
)

// Eq1Error is the paper's Eq. 1: with probability 1-delta, evaluating K
// policies simultaneously on N exploration datapoints whose minimum logged
// propensity is eps yields a confidence interval of size
//
//	sqrt( C / (eps·N) · log(K/delta) )
//
// for every policy, assuming rewards in [0, 1]. C is a small constant.
func Eq1Error(c, eps float64, n float64, k float64, delta float64) float64 {
	if c <= 0 || eps <= 0 || n <= 0 || k < 1 || delta <= 0 || delta >= 1 {
		return math.Inf(1)
	}
	return math.Sqrt(c / (eps * n) * math.Log(k/delta))
}

// Eq1RequiredN inverts Eq. 1: the number of exploration datapoints needed to
// evaluate K policies to within targetErr with probability 1-delta.
func Eq1RequiredN(c, eps float64, k float64, delta, targetErr float64) float64 {
	if targetErr <= 0 {
		return math.Inf(1)
	}
	if c <= 0 || eps <= 0 || k < 1 || delta <= 0 || delta >= 1 {
		return math.Inf(1)
	}
	return c * math.Log(k/delta) / (eps * targetErr * targetErr)
}

// ABError is the paper's A/B-testing counterpart to Eq. 1: splitting N
// datapoints across K policies (each policy only sees data collected while
// it was deployed) gives per-policy error up to
//
//	C · sqrt(K/N) · log(K/delta)
func ABError(c float64, k float64, n float64, delta float64) float64 {
	if c <= 0 || k < 1 || n <= 0 || delta <= 0 || delta >= 1 {
		return math.Inf(1)
	}
	return c * math.Sqrt(k/n) * math.Log(k/delta)
}

// ABRequiredN inverts ABError for the data needed to A/B test K policies to
// within targetErr.
func ABRequiredN(c float64, k float64, delta, targetErr float64) float64 {
	if targetErr <= 0 || c <= 0 || k < 1 || delta <= 0 || delta >= 1 {
		return math.Inf(1)
	}
	l := math.Log(k / delta)
	return k * c * c * l * l / (targetErr * targetErr)
}

// HighConfidenceInterval computes a distribution-free 1-delta confidence
// interval for an IPS-style estimate whose per-datapoint terms lie in
// [0, rangeHi] (rewards in [0,1] imply rangeHi = 1/eps). It returns the
// tighter of the Hoeffding and empirical-Bernstein intervals, following the
// high-confidence off-policy evaluation approach of Thomas et al. (2015)
// that §5 of the paper proposes to leverage.
func HighConfidenceInterval(est Estimate, rangeHi, delta float64) stats.Interval {
	if est.N == 0 {
		return stats.Interval{Point: est.Value, Lo: math.Inf(-1), Hi: math.Inf(1)}
	}
	rH := stats.HoeffdingRadius(est.N, 0, rangeHi, delta)
	// Recover the sample variance of the terms from the standard error.
	v := est.StdErr * est.StdErr * float64(est.N)
	rB := stats.EmpiricalBernsteinRadius(est.N, v, rangeHi, delta)
	r := rH
	if rB < r {
		r = rB
	}
	return stats.Interval{Point: est.Value, Lo: est.Value - r, Hi: est.Value + r}
}
