package ope

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

// selectWorld builds uniform-logged data over 3 actions with context-free
// expected rewards {0.3, 0.5, 0.8} plus noise.
func selectWorld(seed int64, n int) core.Dataset {
	r := stats.NewRand(seed)
	means := []float64{0.3, 0.5, 0.8}
	ds := make(core.Dataset, n)
	for i := range ds {
		a := core.Action(r.Intn(3))
		rew := means[a] + (r.Float64()-0.5)*0.2
		ds[i] = core.Datapoint{
			Context:    core.Context{Features: core.Vector{1}, NumActions: 3},
			Action:     a,
			Reward:     rew,
			Propensity: 1.0 / 3,
		}
	}
	return ds
}

func TestSelectBestPicksTruthfully(t *testing.T) {
	ds := selectWorld(1, 30000)
	pols := []core.Policy{always(0), always(1), always(2)}
	sel, err := SelectBest(nil, pols, ds, 0, 0.05, false)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best.Index != 2 {
		t.Errorf("best = %d, want 2", sel.Best.Index)
	}
	if len(sel.Scores) != 3 {
		t.Fatalf("scores = %d", len(sel.Scores))
	}
	// Simultaneous intervals must each contain the true value.
	truths := []float64{0.3, 0.5, 0.8}
	for i, s := range sel.Scores {
		if !s.Interval.Contains(truths[i]) {
			t.Errorf("interval %d %v misses truth %v", i, s.Interval, truths[i])
		}
	}
	if !sel.Separated {
		t.Error("30k points should certify the winner")
	}
}

func TestSelectBestMinimize(t *testing.T) {
	ds := selectWorld(2, 30000)
	pols := []core.Policy{always(0), always(1), always(2)}
	sel, err := SelectBest(nil, pols, ds, 0, 0.05, true)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best.Index != 0 {
		t.Errorf("min-best = %d, want 0", sel.Best.Index)
	}
}

func TestSelectBestNotSeparatedOnTinyData(t *testing.T) {
	ds := selectWorld(3, 60)
	pols := []core.Policy{always(1), always(2)}
	sel, err := SelectBest(nil, pols, ds, 0, 0.05, false)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Separated {
		t.Error("60 points should not certify a 0.3-gap winner at 95%")
	}
}

func TestSelectBestUnionBoundWidensIntervals(t *testing.T) {
	ds := selectWorld(4, 10000)
	two, err := SelectBest(nil, []core.Policy{always(0), always(2)}, ds, 0, 0.05, false)
	if err != nil {
		t.Fatal(err)
	}
	many := make([]core.Policy, 40)
	for i := range many {
		many[i] = always(core.Action(i % 3))
	}
	forty, err := SelectBest(nil, many, ds, 0, 0.05, false)
	if err != nil {
		t.Fatal(err)
	}
	if forty.Scores[0].Interval.Width() <= two.Scores[0].Interval.Width() {
		t.Errorf("40-way intervals (%v) should be wider than 2-way (%v)",
			forty.Scores[0].Interval.Width(), two.Scores[0].Interval.Width())
	}
}

func TestSelectBestValidation(t *testing.T) {
	ds := selectWorld(5, 100)
	if _, err := SelectBest(nil, nil, ds, 0, 0.05, false); err == nil {
		t.Error("no policies should fail")
	}
	if _, err := SelectBest(nil, []core.Policy{always(0)}, nil, 0, 0.05, false); !errors.Is(err, core.ErrNoData) {
		t.Error("no data should fail")
	}
	if _, err := SelectBest(nil, []core.Policy{always(0)}, ds, 0, 2, false); err == nil {
		t.Error("delta out of range should fail")
	}
	if _, err := SelectBest(nil, []core.Policy{nil}, ds, 0, 0.05, false); err == nil {
		t.Error("nil policy should fail")
	}
}

func TestSelectBestExplicitRange(t *testing.T) {
	ds := selectWorld(6, 5000)
	sel, err := SelectBest(IPS{}, []core.Policy{always(0), always(2)}, ds, 3, 0.05, false)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best.Index != 1 { // slice position of always(2)
		t.Errorf("best = %d, want 1", sel.Best.Index)
	}
}
