// Package ope implements off-policy evaluation for contextual bandits and
// short-horizon reinforcement learning — the core contribution of
// "Harvesting Randomness to Optimize Distributed Systems" (HotNets 2017).
//
// Given exploration data ⟨x_t, a_t, r_t, p_t⟩ logged by a deployed
// randomized policy, the estimators here answer: what average reward would a
// different policy π have obtained? The workhorse is inverse propensity
// scoring (§4 of the paper):
//
//	ips(π) = (1/N) Σ_t 1{π(x_t)=a_t} · r_t / p_t
//
// which is unbiased whenever every action has positive logged propensity.
// The package also provides the bias/variance alternatives the paper's §5
// points at (clipped IPS, self-normalized IPS, the direct method, doubly
// robust) and the trajectory-level importance sampling estimators needed
// when decisions have long-term effects, plus the paper's Eq. 1 error bound
// and its A/B-testing counterpart.
package ope

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/stats"
)

// Estimate is the result of evaluating one policy on one dataset.
type Estimate struct {
	// Value is the estimated average reward of the candidate policy.
	Value float64
	// StdErr is the standard error of Value (sample std dev of the
	// per-datapoint estimates divided by √N).
	StdErr float64
	// N is the number of datapoints consumed.
	N int
	// Matches counts datapoints where the candidate policy picked the
	// logged action — the effective support of the estimate.
	Matches int
	// MaxWeight is the largest importance weight encountered, a quick
	// variance diagnostic.
	MaxWeight float64
	// ESS is Kish's effective sample size (Σw)²/Σw² for the importance
	// weights — how many "full-value" datapoints the weighted estimate is
	// really built on. A small ESS relative to N warns that the candidate
	// policy strays far from the logging policy. Zero when the estimator
	// does not use importance weights.
	ESS float64
	// MeanWeight is the average importance weight actually used by the
	// estimator (post-clipping, when the estimator clips). For a
	// well-calibrated candidate/log pair it is ≈1; drift in either
	// direction is an estimator-health warning. Zero for weight-free
	// estimators.
	MeanWeight float64
	// ClipFraction is the fraction of datapoints whose importance weight
	// exceeded the clip cap — the amount of deliberate bias a clipped
	// estimate carries. Zero when the estimator does not clip.
	ClipFraction float64
}

// String renders the estimate compactly.
func (e Estimate) String() string {
	return fmt.Sprintf("%.4g ±%.2g (N=%d, matches=%d)", e.Value, e.StdErr, e.N, e.Matches)
}

// ConfidenceInterval returns a 1-delta interval around the estimate using a
// normal approximation on the standard error.
func (e Estimate) ConfidenceInterval(delta float64) stats.Interval {
	r := stats.NormalApproxRadius(e.StdErr, delta)
	if e.StdErr == 0 {
		r = 0
	}
	return stats.Interval{Point: e.Value, Lo: e.Value - r, Hi: e.Value + r}
}

// Estimator evaluates a candidate policy against logged exploration data.
type Estimator interface {
	// Name identifies the estimator in experiment output.
	Name() string
	// Estimate computes the policy's estimated average reward.
	Estimate(policy core.Policy, data core.Dataset) (Estimate, error)
}

// RewardModel predicts the reward of taking an action in a context. The
// direct method and doubly robust estimators consume one; package learn
// provides regression-based implementations.
type RewardModel interface {
	Predict(ctx *core.Context, a core.Action) float64
}

// IPS is the unclipped inverse propensity scoring estimator (Eq. in §4).
// The zero value is ready to use.
type IPS struct{}

// Name implements Estimator.
func (IPS) Name() string { return "ips" }

// Estimate implements Estimator. It errors on an empty dataset or any
// datapoint with non-positive propensity (the estimator is undefined there).
func (IPS) Estimate(policy core.Policy, data core.Dataset) (Estimate, error) {
	return weightedEstimate(policy, data, 0, false)
}

// ClippedIPS truncates importance weights at Max, trading a little bias for
// a large variance reduction when propensities are small.
type ClippedIPS struct {
	// Max is the weight cap; values <= 0 mean "no clipping" (plain IPS).
	Max float64
}

// Name implements Estimator.
func (c ClippedIPS) Name() string { return fmt.Sprintf("ips-clip%.3g", c.Max) }

// Estimate implements Estimator.
func (c ClippedIPS) Estimate(policy core.Policy, data core.Dataset) (Estimate, error) {
	return weightedEstimate(policy, data, c.Max, false)
}

// SNIPS is the self-normalized IPS estimator: it divides the weighted reward
// sum by the sum of weights rather than by N. It is biased but consistent,
// with much lower variance, and is invariant to reward translation.
type SNIPS struct{}

// Name implements Estimator.
func (SNIPS) Name() string { return "snips" }

// Estimate implements Estimator.
func (SNIPS) Estimate(policy core.Policy, data core.Dataset) (Estimate, error) {
	return weightedEstimate(policy, data, 0, true)
}

// weightedEstimate is the shared IPS/clip/SNIPS core.
//
// The plain (non-self-normalized) path streams: one pass, no per-datapoint
// storage, variance via a running Welford accumulator — estimator calls sit
// in the inner loop of the policy-class sweeps (Eq. 1 evaluates thousands
// of policies on one log), so the hot path must not allocate. The
// self-normalized path needs the ratio's residuals after the ratio is
// known, so it keeps the per-datapoint terms and takes a second pass.
func weightedEstimate(policy core.Policy, data core.Dataset, clip float64, selfNormalize bool) (Estimate, error) {
	if len(data) == 0 {
		return Estimate{}, core.ErrNoData
	}
	if !selfNormalize {
		var (
			acc        stats.Welford
			matches    int
			clipped    int
			maxW       float64
			wsum, w2um float64
		)
		for i := range data {
			d := &data[i]
			pi := core.ActionProb(policy, &d.Context, d.Action)
			w, ok := core.ImportanceWeight(pi, d.Propensity)
			if !ok {
				return Estimate{}, fmt.Errorf("ope: datapoint %d has propensity %v; %w",
					i, d.Propensity, errBadPropensity)
			}
			if clip > 0 && w > clip {
				w = clip
				clipped++
			}
			if pi > 0 {
				matches++
			}
			if w > maxW {
				maxW = w
			}
			wsum += w
			w2um += w * w
			acc.Add(w * d.Reward)
		}
		n := float64(len(data))
		ess := 0.0
		if w2um > 0 {
			ess = wsum * wsum / w2um
		}
		return Estimate{
			Value:        acc.Mean(),
			StdErr:       math.Sqrt(acc.Variance() / n),
			N:            len(data),
			Matches:      matches,
			MaxWeight:    maxW,
			ESS:          ess,
			MeanWeight:   wsum / n,
			ClipFraction: float64(clipped) / n,
		}, nil
	}

	var (
		sum     float64 // Σ w_t r_t
		wsum    float64 // Σ w_t
		matches int
		clipped int
		maxW    float64
		terms   = make([]float64, 0, len(data)) // w_t r_t
		weights = make([]float64, 0, len(data))
	)
	for i := range data {
		d := &data[i]
		pi := core.ActionProb(policy, &d.Context, d.Action)
		w, ok := core.ImportanceWeight(pi, d.Propensity)
		if !ok {
			return Estimate{}, fmt.Errorf("ope: datapoint %d has propensity %v; %w",
				i, d.Propensity, errBadPropensity)
		}
		if clip > 0 && w > clip {
			w = clip
			clipped++
		}
		if pi > 0 {
			matches++
		}
		if w > maxW {
			maxW = w
		}
		sum += w * d.Reward
		wsum += w
		terms = append(terms, w*d.Reward)
		weights = append(weights, w)
	}
	n := float64(len(data))
	est := Estimate{
		N: len(data), Matches: matches, MaxWeight: maxW,
		MeanWeight: wsum / n, ClipFraction: float64(clipped) / n,
	}
	if wsum == 0 {
		return Estimate{}, fmt.Errorf("ope: %w: no datapoint matches the candidate policy", ErrNoOverlap)
	}
	w2 := 0.0
	for _, wv := range weights {
		w2 += wv * wv
	}
	if w2 > 0 {
		est.ESS = wsum * wsum / w2
	}
	v := sum / wsum
	est.Value = v
	// Delta-method standard error for the ratio estimator:
	// Var(Σwr/Σw) ≈ (1/(n·w̄²)) · Var(w r - v w).
	wbar := wsum / n
	resid := make([]float64, len(data))
	for i := range resid {
		resid[i] = terms[i] - v*weights[i]
	}
	est.StdErr = math.Sqrt(stats.Variance(resid)/n) / wbar
	return est, nil
}

// DirectMethod scores a policy purely with a learned reward model:
// dm(π) = (1/N) Σ_t model(x_t, π(x_t)). It has low variance but inherits
// any bias in the model.
type DirectMethod struct {
	Model RewardModel
}

// Name implements Estimator.
func (DirectMethod) Name() string { return "dm" }

// Estimate implements Estimator.
func (dm DirectMethod) Estimate(policy core.Policy, data core.Dataset) (Estimate, error) {
	if len(data) == 0 {
		return Estimate{}, core.ErrNoData
	}
	if dm.Model == nil {
		return Estimate{}, fmt.Errorf("ope: direct method requires a reward model")
	}
	terms := make([]float64, len(data))
	sum := 0.0
	for i := range data {
		d := &data[i]
		a := policy.Act(&d.Context)
		v := dm.Model.Predict(&d.Context, a)
		terms[i] = v
		sum += v
	}
	n := float64(len(data))
	return Estimate{
		Value:   sum / n,
		StdErr:  math.Sqrt(stats.Variance(terms) / n),
		N:       len(data),
		Matches: len(data),
	}, nil
}

// DoublyRobust combines the direct method with an IPS correction on the
// model's residuals (Dudík, Langford, Li 2011): unbiased whenever either the
// propensities or the model are correct, with variance driven only by the
// residuals.
type DoublyRobust struct {
	Model RewardModel
	// Clip optionally caps the correction weights (<= 0 disables).
	Clip float64
}

// Name implements Estimator.
func (DoublyRobust) Name() string { return "dr" }

// Estimate implements Estimator.
func (dr DoublyRobust) Estimate(policy core.Policy, data core.Dataset) (Estimate, error) {
	if len(data) == 0 {
		return Estimate{}, core.ErrNoData
	}
	if dr.Model == nil {
		return Estimate{}, fmt.Errorf("ope: doubly robust requires a reward model")
	}
	terms := make([]float64, len(data))
	sum := 0.0
	matches := 0
	clipped := 0
	maxW := 0.0
	wsum, w2sum := 0.0, 0.0
	for i := range data {
		d := &data[i]
		aPi := policy.Act(&d.Context)
		base := dr.Model.Predict(&d.Context, aPi)
		pi := core.ActionProb(policy, &d.Context, d.Action)
		w, ok := core.ImportanceWeight(pi, d.Propensity)
		if !ok {
			return Estimate{}, fmt.Errorf("ope: datapoint %d has propensity %v; %w",
				i, d.Propensity, errBadPropensity)
		}
		if dr.Clip > 0 && w > dr.Clip {
			w = dr.Clip
			clipped++
		}
		if pi > 0 {
			matches++
		}
		if w > maxW {
			maxW = w
		}
		wsum += w
		w2sum += w * w
		t := base + w*(d.Reward-dr.Model.Predict(&d.Context, d.Action))
		terms[i] = t
		sum += t
	}
	n := float64(len(data))
	est := Estimate{
		Value:        sum / n,
		StdErr:       math.Sqrt(stats.Variance(terms) / n),
		N:            len(data),
		Matches:      matches,
		MaxWeight:    maxW,
		MeanWeight:   wsum / n,
		ClipFraction: float64(clipped) / n,
	}
	if w2sum > 0 {
		est.ESS = wsum * wsum / w2sum
	}
	return est, nil
}

var (
	errBadPropensity = fmt.Errorf("propensity must be positive (all actions must be explored)")
	// ErrNoOverlap is returned when no logged datapoint matches the
	// candidate policy, so a self-normalized estimate is undefined.
	ErrNoOverlap = fmt.Errorf("ope: candidate policy has no overlap with logged actions")
)
