package ope

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// Scored pairs a candidate policy with its estimate and simultaneous
// confidence interval.
type Scored struct {
	Index    int
	Estimate Estimate
	// Interval holds with probability 1-delta simultaneously across ALL
	// candidates passed to SelectBest (union bound: each interval is
	// computed at delta/K — the log(K/δ) of the paper's Eq. 1).
	Interval stats.Interval
}

// Selection is the outcome of a simultaneous evaluation.
type Selection struct {
	// Best is the candidate with the highest lower confidence bound (the
	// safe choice under the high-confidence off-policy evaluation
	// recipe); Scores holds every candidate in input order.
	Best   Scored
	Scores []Scored
	// Separated reports whether the best candidate's lower bound exceeds
	// the runner-up's upper bound — i.e. the data sufficed to certify a
	// winner at the requested confidence.
	Separated bool
}

// DeriveRangeHi returns the default per-datapoint IPS range bound for a
// dataset: max reward over the minimum logged propensity (for rewards in
// [0,1] it is 1/ε — the paper's Eq. 1 scale).
func DeriveRangeHi(data core.Dataset) (float64, error) {
	if len(data) == 0 {
		return 0, core.ErrNoData
	}
	eps := data.MinPropensity()
	if !(eps > 0) {
		return 0, fmt.Errorf("ope: cannot derive range: min propensity %v", eps)
	}
	_, hi := data.RewardRange()
	if hi <= 0 {
		hi = 1
	}
	return hi / eps, nil
}

// SelectBest evaluates every candidate policy on the same exploration data
// — the core capability Fig. 1 quantifies: one log, K policies — and
// returns per-policy estimates with simultaneous 1-delta confidence
// intervals, picking the winner by lower confidence bound.
//
// rangeHi bounds the per-datapoint IPS terms (for rewards in [0,1] it is
// 1/ε with ε the minimum logged propensity); pass 0 to derive it from the
// dataset. minimize treats rewards as costs.
func SelectBest(est Estimator, policies []core.Policy, data core.Dataset, rangeHi, delta float64, minimize bool) (*Selection, error) {
	if len(policies) == 0 {
		return nil, fmt.Errorf("ope: no candidate policies")
	}
	if len(data) == 0 {
		return nil, core.ErrNoData
	}
	if est == nil {
		est = IPS{}
	}
	if rangeHi <= 0 {
		var err error
		rangeHi, err = DeriveRangeHi(data)
		if err != nil {
			return nil, err
		}
	}
	ests := make([]Estimate, len(policies))
	for i, p := range policies {
		if p == nil {
			return nil, fmt.Errorf("ope: candidate %d is nil", i)
		}
		e, err := est.Estimate(p, data)
		if err != nil {
			return nil, fmt.Errorf("ope: candidate %d: %w", i, err)
		}
		ests[i] = e
	}
	return SelectFromEstimates(ests, rangeHi, delta, minimize)
}

// SelectFromEstimates performs the selection step of SelectBest on
// already-computed per-candidate estimates (in candidate order): it attaches
// simultaneous 1-delta confidence intervals via the union bound and picks
// the winner by confidence bound. Callers that fan the Estimate calls out
// across workers (cmd/evalpolicy does) reduce through this so the selection
// itself stays serial and deterministic in candidate order.
func SelectFromEstimates(ests []Estimate, rangeHi, delta float64, minimize bool) (*Selection, error) {
	if len(ests) == 0 {
		return nil, fmt.Errorf("ope: no candidate estimates")
	}
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("ope: delta %v out of (0,1)", delta)
	}
	if rangeHi <= 0 {
		return nil, fmt.Errorf("ope: rangeHi %v must be positive", rangeHi)
	}
	perPolicyDelta := delta / float64(len(ests)) // union bound

	sel := &Selection{Scores: make([]Scored, len(ests))}
	bestIdx := -1
	for i, e := range ests {
		iv := HighConfidenceInterval(e, rangeHi, perPolicyDelta)
		sel.Scores[i] = Scored{Index: i, Estimate: e, Interval: iv}
		if bestIdx == -1 {
			bestIdx = i
			continue
		}
		cur, best := sel.Scores[i], sel.Scores[bestIdx]
		if minimize {
			if cur.Interval.Hi < best.Interval.Hi {
				bestIdx = i
			}
		} else if cur.Interval.Lo > best.Interval.Lo {
			bestIdx = i
		}
	}
	sel.Best = sel.Scores[bestIdx]

	// Separation: best's pessimistic bound beats every other candidate's
	// optimistic bound.
	sel.Separated = true
	for i, s := range sel.Scores {
		if i == bestIdx {
			continue
		}
		if minimize {
			if sel.Best.Interval.Hi >= s.Interval.Lo {
				sel.Separated = false
				break
			}
		} else if sel.Best.Interval.Lo <= s.Interval.Hi {
			sel.Separated = false
			break
		}
	}
	return sel, nil
}
