package ope

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

// genHorizonTrajectories builds m trajectories of length h with uniform
// logging over k actions. The reward at each step is 1 iff action 0 was
// taken, and each context carries a single feature: the number of steps
// remaining (including the current one), so value models can be exact.
func genHorizonTrajectories(r *rand.Rand, m, h, k int) []core.Trajectory {
	trs := make([]core.Trajectory, m)
	for i := range trs {
		tr := make(core.Trajectory, h)
		for j := range tr {
			a := core.Action(r.Intn(k))
			rew := 0.0
			if a == 0 {
				rew = 1
			}
			tr[j] = core.Datapoint{
				Context: core.Context{
					Features:   core.Vector{float64(h - j)},
					NumActions: k,
				},
				Action:     a,
				Reward:     rew,
				Propensity: 1 / float64(k),
				Seq:        int64(j),
				Tag:        fmt.Sprintf("t%d", i),
			}
		}
		trs[i] = tr
	}
	return trs
}

// valueModel is the exact Q for the always-0 candidate in the horizon
// world: immediate reward of a plus one unit per remaining step (γ=1).
type valueModel struct{ bias float64 }

func (m valueModel) Predict(ctx *core.Context, a core.Action) float64 {
	immediate := 0.0
	if a == 0 {
		immediate = 1
	}
	remaining := ctx.Features[0] - 1 // steps after this one
	return immediate + remaining + m.bias
}

type zeroModel struct{}

func (zeroModel) Predict(*core.Context, core.Action) float64 { return 0 }

func TestTrajectoryDRExactWithPerfectModel(t *testing.T) {
	// With a perfect value model, DR is essentially exact even at a
	// horizon where plain trajectory IS has collapsed (§5's motivation).
	r := stats.NewRand(1)
	trs := genHorizonTrajectories(r, 3000, 12, 2)
	dr := TrajectoryDR{Model: valueModel{}, Gamma: 1}
	est, err := dr.EstimateTrajectories(always(0), trs)
	if err != nil {
		t.Fatal(err)
	}
	// True value of always-0 over horizon 12 is 12.
	if math.Abs(est.Value-12) > 1e-9 {
		t.Errorf("traj-dr = %v, want exactly 12", est.Value)
	}
	if est.StdErr > 1e-9 {
		t.Errorf("traj-dr stderr = %v, want 0 with a perfect model", est.StdErr)
	}
	// Plain trajectory IS at horizon 12 is hopeless by comparison.
	tis, err := (TrajectoryIS{Gamma: 1}).EstimateTrajectories(always(0), trs)
	if err != nil {
		t.Fatal(err)
	}
	if tis.StdErr < 1 {
		t.Errorf("expected traj-is stderr %v to be large at horizon 12", tis.StdErr)
	}
}

func TestTrajectoryDRUnbiasedWithWrongModel(t *testing.T) {
	// With correct propensities, a biased model must not bias the
	// estimate (short horizon so the check is statistically feasible).
	r := stats.NewRand(2)
	trs := genHorizonTrajectories(r, 60000, 2, 2)
	dr := TrajectoryDR{Model: valueModel{bias: 0.5}, Gamma: 1}
	est, err := dr.EstimateTrajectories(always(0), trs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-2) > 3*est.StdErr+0.02 {
		t.Errorf("traj-dr with biased model = %v ± %v, want 2", est.Value, est.StdErr)
	}
}

func TestTrajectoryDRVarianceBeatsISWithDecentModel(t *testing.T) {
	r := stats.NewRand(3)
	trs := genHorizonTrajectories(r, 10000, 6, 2)
	dr := TrajectoryDR{Model: valueModel{bias: 0.25}, Gamma: 1}
	drEst, err := dr.EstimateTrajectories(always(0), trs)
	if err != nil {
		t.Fatal(err)
	}
	isEst, err := (TrajectoryIS{Gamma: 1}).EstimateTrajectories(always(0), trs)
	if err != nil {
		t.Fatal(err)
	}
	if drEst.StdErr >= isEst.StdErr/5 {
		t.Errorf("dr stderr %v should be ≪ traj-is %v", drEst.StdErr, isEst.StdErr)
	}
	if math.Abs(drEst.Value-6) > 3*drEst.StdErr+0.05 {
		t.Errorf("dr value %v ± %v, want 6", drEst.Value, drEst.StdErr)
	}
}

func TestTrajectoryDRHorizonOneMatchesDoublyRobust(t *testing.T) {
	// On horizon-1 data a value model is a reward model and TrajectoryDR
	// must agree with the CB DoublyRobust estimator exactly.
	r := stats.NewRand(4)
	trs := genHorizonTrajectories(r, 5000, 1, 3)
	flat := core.Flatten(trs)
	m := valueModel{}
	a, err := (TrajectoryDR{Model: m, Gamma: 1}).EstimateTrajectories(always(0), trs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (DoublyRobust{Model: m}).Estimate(always(0), flat)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Value-b.Value) > 1e-12 {
		t.Errorf("traj-dr %v != dr %v on horizon-1 data", a.Value, b.Value)
	}
}

func TestTrajectoryDRStochasticCandidate(t *testing.T) {
	// On-policy stochastic candidate: every ρ is 1 and the estimate
	// reduces to the empirical mean return plus telescoping model terms
	// that cancel in expectation.
	r := stats.NewRand(5)
	trs := genHorizonTrajectories(r, 20000, 3, 2)
	cand := uniformStochastic{k: 2}
	dr := TrajectoryDR{Model: zeroModel{}, Gamma: 1}
	est, err := dr.EstimateTrajectories(cand, trs)
	if err != nil {
		t.Fatal(err)
	}
	var mean stats.Welford
	for _, tr := range trs {
		mean.Add(tr.Return(1))
	}
	if math.Abs(est.Value-mean.Mean()) > 1e-9 {
		t.Errorf("on-policy dr with zero model %v should equal empirical %v", est.Value, mean.Mean())
	}
}

func TestTrajectoryDRDiscounting(t *testing.T) {
	// Zero model and ρ=1 reduce the recursion to the discounted return.
	tr := core.Trajectory{
		{Context: core.Context{Features: core.Vector{3}, NumActions: 1}, Action: 0, Reward: 1, Propensity: 1},
		{Context: core.Context{Features: core.Vector{2}, NumActions: 1}, Action: 0, Reward: 1, Propensity: 1},
		{Context: core.Context{Features: core.Vector{1}, NumActions: 1}, Action: 0, Reward: 1, Propensity: 1},
	}
	dr := TrajectoryDR{Model: zeroModel{}, Gamma: 0.5}
	est, err := dr.EstimateTrajectories(always(0), []core.Trajectory{tr})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + 0.5 + 0.25
	if math.Abs(est.Value-want) > 1e-12 {
		t.Errorf("discounted dr = %v, want %v", est.Value, want)
	}
}

func TestTrajectoryDRValidation(t *testing.T) {
	if _, err := (TrajectoryDR{Model: zeroModel{}}).EstimateTrajectories(always(0), nil); !errors.Is(err, core.ErrNoData) {
		t.Error("empty should fail")
	}
	trs := []core.Trajectory{{{Context: core.Context{NumActions: 2}, Propensity: 0.5}}}
	if _, err := (TrajectoryDR{}).EstimateTrajectories(always(0), trs); err == nil {
		t.Error("nil model should fail")
	}
	bad := []core.Trajectory{{{Context: core.Context{NumActions: 2}, Propensity: 0}}}
	if _, err := (TrajectoryDR{Model: zeroModel{}}).EstimateTrajectories(always(0), bad); err == nil {
		t.Error("zero propensity should fail")
	}
}

func TestTrajectoryDRClipAndFlat(t *testing.T) {
	r := stats.NewRand(6)
	trs := genHorizonTrajectories(r, 2000, 4, 2)
	dr := TrajectoryDR{Model: valueModel{}, Gamma: 1, Clip: 1.5}
	est, err := dr.EstimateTrajectories(always(0), trs)
	if err != nil {
		t.Fatal(err)
	}
	if est.MaxWeight > 1.5 {
		t.Errorf("max per-step ratio %v exceeds clip", est.MaxWeight)
	}
	// Flat-dataset entry point agrees with grouped.
	flat := core.Flatten(trs)
	a, err := dr.Estimate(always(0), flat)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Value-est.Value) > 1e-12 {
		t.Errorf("flat %v != grouped %v", a.Value, est.Value)
	}
	if dr.Name() != "traj-dr" {
		t.Errorf("name = %q", dr.Name())
	}
}
