package ope

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/stats"
)

// TrajectoryDR is the doubly robust estimator for trajectories (Jiang & Li
// 2016), the technique §5 of the paper proposes for taming the variance of
// sequence importance sampling: "We envision leveraging doubly robust
// techniques, which use modeling to predict rewards, to reduce this
// variance."
//
// Given a state-action *value* model Q(x, a) — an estimate of the
// discounted return of taking a in x and following the candidate policy
// afterwards (NOT just the immediate reward) — the estimate for one
// trajectory is computed backwards from the last step:
//
//	v_{T+1} = 0
//	v_t     = V̂(x_t) + ρ_t · (r_t + γ·v_{t+1} − Q(x_t, a_t))
//
// where ρ_t = π(a_t|x_t)/p_t is the per-step importance ratio and
// V̂(x) = Σ_a π(a|x)·Q(x, a) is the model value of the candidate policy in
// state x. With a perfect value model the correction term vanishes and the
// estimator is exact regardless of horizon; with correct propensities it
// is unbiased regardless of the model — the "doubly robust" guarantee,
// extended over sequences. In the contextual-bandit special case
// (horizon 1) Q degenerates to a reward model and TrajectoryDR coincides
// with DoublyRobust.
type TrajectoryDR struct {
	// Model predicts the remaining discounted return of (context, action)
	// under the candidate policy. ope.RewardModel has the right shape; for
	// horizon-1 data an immediate-reward model is exactly right.
	Model RewardModel
	// Gamma is the per-step discount (0 means 1).
	Gamma float64
	// Clip caps each per-step ratio ρ_t (<= 0 disables).
	Clip float64
}

// Name identifies the estimator.
func (TrajectoryDR) Name() string { return "traj-dr" }

// EstimateTrajectories computes the DR estimate over trajectories.
func (t TrajectoryDR) EstimateTrajectories(policy core.Policy, trajs []core.Trajectory) (Estimate, error) {
	if len(trajs) == 0 {
		return Estimate{}, core.ErrNoData
	}
	if t.Model == nil {
		return Estimate{}, fmt.Errorf("ope: trajectory DR requires a reward model")
	}
	gamma := t.Gamma
	if gamma == 0 {
		gamma = 1
	}
	terms := make([]float64, len(trajs))
	sum := 0.0
	maxW := 0.0
	matches := 0
	for i, tr := range trajs {
		v := 0.0
		matched := false
		for j := len(tr) - 1; j >= 0; j-- {
			d := &tr[j]
			if !(d.Propensity > 0) {
				return Estimate{}, fmt.Errorf("ope: trajectory %d step %d has propensity %v; %w",
					i, j, d.Propensity, errBadPropensity)
			}
			rho := core.ActionProb(policy, &d.Context, d.Action) / d.Propensity
			if t.Clip > 0 && rho > t.Clip {
				rho = t.Clip
			}
			if rho > maxW {
				maxW = rho
			}
			if rho > 0 {
				matched = true
			}
			v = t.value(policy, &d.Context) + rho*(d.Reward+gamma*v-t.Model.Predict(&d.Context, d.Action))
		}
		if matched {
			matches++
		}
		terms[i] = v
		sum += v
	}
	m := float64(len(trajs))
	return Estimate{
		Value:     sum / m,
		StdErr:    math.Sqrt(stats.Variance(terms) / m),
		N:         len(trajs),
		Matches:   matches,
		MaxWeight: maxW,
	}, nil
}

// value computes V̂(x) = Σ_a π(a|x) Q(x, a) (a point mass for deterministic
// policies).
func (t TrajectoryDR) value(policy core.Policy, ctx *core.Context) float64 {
	if sp, ok := policy.(core.StochasticPolicy); ok {
		dist := sp.Distribution(ctx)
		v := 0.0
		for a, p := range dist {
			if p > 0 {
				v += p * t.Model.Predict(ctx, core.Action(a))
			}
		}
		return v
	}
	return t.Model.Predict(ctx, policy.Act(ctx))
}

// Estimate implements Estimator by grouping the flat dataset into
// trajectories via core.SplitTrajectories.
func (t TrajectoryDR) Estimate(policy core.Policy, data core.Dataset) (Estimate, error) {
	return t.EstimateTrajectories(policy, core.SplitTrajectories(data))
}
