package ope

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

// skewedLogger logs action 0 heavily; other actions get eps/K each.
type skewedLogger struct {
	k   int
	eps float64
}

func (l skewedLogger) Act(ctx *core.Context) core.Action { return 0 }
func (l skewedLogger) Distribution(ctx *core.Context) []float64 {
	d := make([]float64, l.k)
	for i := range d {
		d[i] = l.eps / float64(l.k)
	}
	d[0] += 1 - l.eps
	return d
}

// genSwitchData logs from the skewed policy with exact propensities.
func genSwitchData(r *rand.Rand, n, k int, eps float64) core.Dataset {
	logger := skewedLogger{k: k, eps: eps}
	ds := make(core.Dataset, n)
	for i := range ds {
		x := core.Vector{r.Float64()}
		ctx := core.Context{Features: x, NumActions: k}
		dist := logger.Distribution(&ctx)
		a := core.Action(stats.Categorical(r, dist))
		ds[i] = core.Datapoint{
			Context:    ctx,
			Action:     a,
			Reward:     trueReward(x, a),
			Propensity: dist[a],
		}
	}
	return ds
}

func TestSwitchInterpolatesIPSAndDM(t *testing.T) {
	r := stats.NewRand(1)
	ds := genSwitchData(r, 20000, 4, 0.2)
	logger := skewedLogger{k: 4, eps: 0.2}
	pol := always(3) // rarely-logged action: weight 1/(0.05) = 20
	ips, err := (IPS{}).Estimate(pol, ds)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := (DirectMethod{Model: perfectModel{}}).Estimate(pol, ds)
	if err != nil {
		t.Fatal(err)
	}
	// Huge τ → IPS exactly.
	hi, err := (Switch{Model: perfectModel{}, Logging: logger, Tau: 1e9}).Estimate(pol, ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hi.Value-ips.Value) > 1e-9 {
		t.Errorf("tau→∞: switch %v != ips %v", hi.Value, ips.Value)
	}
	// Tiny τ → DM exactly.
	lo, err := (Switch{Model: perfectModel{}, Logging: logger, Tau: 1e-9}).Estimate(pol, ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo.Value-dm.Value) > 1e-9 {
		t.Errorf("tau→0: switch %v != dm %v", lo.Value, dm.Value)
	}
}

func TestSwitchCutsVarianceOnHeavyTail(t *testing.T) {
	r := stats.NewRand(2)
	ds := genSwitchData(r, 20000, 4, 0.2)
	logger := skewedLogger{k: 4, eps: 0.2}
	pol := always(3)
	truth := truth(pol, 4)
	ips, err := (IPS{}).Estimate(pol, ds)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := (Switch{Model: perfectModel{}, Logging: logger, Tau: 10}).Estimate(pol, ds)
	if err != nil {
		t.Fatal(err)
	}
	if sw.StdErr >= ips.StdErr/2 {
		t.Errorf("switch stderr %v should be ≪ ips %v", sw.StdErr, ips.StdErr)
	}
	if math.Abs(sw.Value-truth) > 0.02 {
		t.Errorf("switch = %v, truth = %v", sw.Value, truth)
	}
}

func TestSwitchHandlesStochasticCandidate(t *testing.T) {
	r := stats.NewRand(3)
	ds := genSwitchData(r, 30000, 3, 0.3)
	logger := skewedLogger{k: 3, eps: 0.3}
	cand := uniformStochastic{k: 3}
	sw, err := (Switch{Model: perfectModel{}, Logging: logger, Tau: 2}).Estimate(cand, ds)
	if err != nil {
		t.Fatal(err)
	}
	// Truth for the uniform candidate via Monte Carlo.
	want := 0.0
	mc := stats.NewRand(99)
	for i := 0; i < 100000; i++ {
		x := core.Vector{mc.Float64()}
		a := core.Action(mc.Intn(3))
		want += trueReward(x, a)
	}
	want /= 100000
	if math.Abs(sw.Value-want) > 0.02 {
		t.Errorf("switch = %v, truth = %v", sw.Value, want)
	}
}

func TestSwitchUnexploredActionUsesModel(t *testing.T) {
	// Logging gives zero mass to action 1: IPS is undefined there, but
	// SWITCH scores it with the model (ratio = ∞ > τ).
	ds := core.Dataset{{
		Context:    core.Context{Features: core.Vector{0.5}, NumActions: 2},
		Action:     0,
		Reward:     1,
		Propensity: 1,
	}}
	logger := core.StochasticPolicy(pointMass{k: 2})
	sw, err := (Switch{Model: perfectModel{}, Logging: logger, Tau: 5}).Estimate(always(1), ds)
	if err != nil {
		t.Fatal(err)
	}
	want := trueReward(core.Vector{0.5}, 1)
	if math.Abs(sw.Value-want) > 1e-9 {
		t.Errorf("switch = %v, want model value %v", sw.Value, want)
	}
}

// pointMass logs action 0 always.
type pointMass struct{ k int }

func (p pointMass) Act(*core.Context) core.Action { return 0 }
func (p pointMass) Distribution(ctx *core.Context) []float64 {
	d := make([]float64, p.k)
	d[0] = 1
	return d
}

func TestSwitchValidation(t *testing.T) {
	ds := genSwitchData(stats.NewRand(4), 10, 3, 0.3)
	logger := skewedLogger{k: 3, eps: 0.3}
	if _, err := (Switch{Logging: logger}).Estimate(always(0), nil); !errors.Is(err, core.ErrNoData) {
		t.Error("empty should fail")
	}
	if _, err := (Switch{Logging: logger}).Estimate(always(0), ds); err == nil {
		t.Error("nil model should fail")
	}
	if _, err := (Switch{Model: perfectModel{}}).Estimate(always(0), ds); err == nil {
		t.Error("nil logging policy should fail")
	}
	bad := core.Dataset{{Context: core.Context{Features: core.Vector{0}, NumActions: 2}, Propensity: 0}}
	if _, err := (Switch{Model: perfectModel{}, Logging: pointMass{k: 2}}).Estimate(always(0), bad); err == nil {
		t.Error("zero propensity should fail")
	}
	if (Switch{}).Name() == "" {
		t.Error("name empty")
	}
}
