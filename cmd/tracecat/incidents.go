package main

// Incident-log mode (-incidents): validate and summarize fleetwatch's
// incident JSONL. Validation mirrors the trace mode's spirit — every line
// must parse into the locked record shape, sequence numbers must climb,
// and every resolve must pair with an earlier open — then the summary
// answers the pager questions: which rules burned, what is still open,
// and what burned longest.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/obswatch"
)

// catIncidents validates and summarizes each incident log, then a combined
// fleet summary when more than one file validated. Returns the exit code.
func catIncidents(stdout, stderr io.Writer, paths []string) int {
	code := 0
	var fleet []obswatch.Incident
	valid := 0
	for _, path := range paths {
		recs, err := readIncidents(path)
		if err != nil {
			fmt.Fprintf(stderr, "tracecat: %s: %v\n", path, err)
			code = 1
			continue
		}
		summarizeIncidents(stdout, path, recs)
		fleet = append(fleet, recs...)
		valid++
	}
	if valid > 1 {
		summarizeIncidents(stdout, fmt.Sprintf("fleet (%d logs)", valid), fleet)
	}
	return code
}

// readIncidents parses one incident JSONL file and checks its invariants:
// known version, strictly increasing Seq, valid states, and resolves that
// pair with a currently-open incident of the same identity.
func readIncidents(path string) ([]obswatch.Incident, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()

	var recs []obswatch.Incident
	open := map[string]bool{}
	lastSeq := int64(0)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var inc obswatch.Incident
		if err := json.Unmarshal(sc.Bytes(), &inc); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if inc.Version != obswatch.IncidentVersion {
			return nil, fmt.Errorf("line %d: version %d, want %d", line, inc.Version, obswatch.IncidentVersion)
		}
		if inc.Seq <= lastSeq {
			return nil, fmt.Errorf("line %d: seq %d after %d (must increase)", line, inc.Seq, lastSeq)
		}
		lastSeq = inc.Seq
		key := inc.Rule + "|" + inc.Target + "|" + inc.Series
		switch inc.State {
		case "open":
			if open[key] {
				return nil, fmt.Errorf("line %d: %s opened while already open", line, key)
			}
			open[key] = true
		case "resolved":
			if !open[key] {
				return nil, fmt.Errorf("line %d: %s resolved without an open", line, key)
			}
			delete(open, key)
		default:
			return nil, fmt.Errorf("line %d: unknown state %q", line, inc.State)
		}
		recs = append(recs, inc)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// summarizeIncidents prints the counts by rule, the open-vs-resolved
// split, what is still burning, and the longest resolved burn. Output is
// deterministic for a given log (sorted rules, raw unix-milli stamps).
func summarizeIncidents(w io.Writer, label string, recs []obswatch.Incident) {
	type ruleAgg struct {
		opens, resolves int
	}
	byRule := map[string]*ruleAgg{}
	stillOpen := map[string]obswatch.Incident{}
	var longest *obswatch.Incident
	for i, inc := range recs {
		a := byRule[inc.Rule]
		if a == nil {
			a = &ruleAgg{}
			byRule[inc.Rule] = a
		}
		key := inc.Rule + "|" + inc.Target + "|" + inc.Series
		switch inc.State {
		case "open":
			a.opens++
			stillOpen[key] = inc
		case "resolved":
			a.resolves++
			delete(stillOpen, key)
			if longest == nil || inc.DurationSeconds > longest.DurationSeconds {
				longest = &recs[i]
			}
		}
	}
	opens, resolves := 0, 0
	for _, a := range byRule {
		opens += a.opens
		resolves += a.resolves
	}
	fmt.Fprintf(w, "%s: %d incident records (%d opened, %d resolved, %d still burning)\n",
		label, len(recs), opens, resolves, len(stillOpen))
	rules := make([]string, 0, len(byRule))
	for r := range byRule {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	for _, r := range rules {
		a := byRule[r]
		fmt.Fprintf(w, "  %-28s opened ×%-4d resolved ×%-4d\n", r, a.opens, a.resolves)
	}
	if longest != nil {
		fmt.Fprintf(w, "  longest burn: %s on %s (%s) %.3fs\n",
			longest.Rule, longest.Target, longest.Series, longest.DurationSeconds)
	}
	keys := make([]string, 0, len(stillOpen))
	for k := range stillOpen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		inc := stillOpen[k]
		fmt.Fprintf(w, "  still burning: %s on %s (%s) since t=%d: %s\n",
			inc.Rule, inc.Target, inc.Series, inc.OpenedUnixMilli, inc.Detail)
	}
}
