package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obswatch"
)

// writeIncidents materializes an incident JSONL file from records,
// stamping Version and Seq in write order like the watcher does.
func writeIncidents(t *testing.T, path string, recs []obswatch.Incident) {
	t.Helper()
	var buf bytes.Buffer
	for i := range recs {
		recs[i].Version = obswatch.IncidentVersion
		recs[i].Seq = int64(i + 1)
		b, err := json.Marshal(recs[i])
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestIncidentsSummary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "incidents.jsonl")
	writeIncidents(t, path, []obswatch.Incident{
		{State: "open", Rule: "shard_stale", Target: "agg", Series: "s{shard=\"a\"}",
			TimeUnixMilli: 1000, OpenedUnixMilli: 1000, Detail: "stale"},
		{State: "open", Rule: "target_down", Target: "ro", Series: "watch_up",
			TimeUnixMilli: 2000, OpenedUnixMilli: 2000, Detail: "down"},
		{State: "resolved", Rule: "shard_stale", Target: "agg", Series: "s{shard=\"a\"}",
			TimeUnixMilli: 9000, OpenedUnixMilli: 1000, DurationSeconds: 8, Detail: "fresh"},
		{State: "open", Rule: "shard_stale", Target: "agg", Series: "s{shard=\"b\"}",
			TimeUnixMilli: 9500, OpenedUnixMilli: 9500, Detail: "stale again"},
		{State: "resolved", Rule: "shard_stale", Target: "agg", Series: "s{shard=\"b\"}",
			TimeUnixMilli: 9750, OpenedUnixMilli: 9500, DurationSeconds: 0.25, Detail: "fresh"},
	})

	var out, errOut bytes.Buffer
	if code := run([]string{"-incidents", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		"5 incident records (3 opened, 2 resolved, 1 still burning)",
		"shard_stale                  opened ×2    resolved ×2",
		"target_down                  opened ×1    resolved ×0",
		"longest burn: shard_stale on agg (s{shard=\"a\"}) 8.000s",
		"still burning: target_down on ro (watch_up) since t=2000: down",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
}

func TestIncidentsValidation(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name    string
		recs    []obswatch.Incident
		munge   func(string) string
		wantErr string
	}{
		{
			name: "resolve without open",
			recs: []obswatch.Incident{
				{State: "resolved", Rule: "r", Target: "t", Series: "s",
					TimeUnixMilli: 1, OpenedUnixMilli: 1},
			},
			wantErr: "resolved without an open",
		},
		{
			name: "double open",
			recs: []obswatch.Incident{
				{State: "open", Rule: "r", Target: "t", Series: "s", TimeUnixMilli: 1, OpenedUnixMilli: 1},
				{State: "open", Rule: "r", Target: "t", Series: "s", TimeUnixMilli: 2, OpenedUnixMilli: 2},
			},
			wantErr: "opened while already open",
		},
		{
			name: "bad state",
			recs: []obswatch.Incident{
				{State: "flapping", Rule: "r", Target: "t", Series: "s", TimeUnixMilli: 1},
			},
			wantErr: "unknown state",
		},
		{
			name: "bad version",
			recs: []obswatch.Incident{
				{State: "open", Rule: "r", Target: "t", Series: "s", TimeUnixMilli: 1},
			},
			munge: func(s string) string {
				return strings.Replace(s, `"version":1`, `"version":99`, 1)
			},
			wantErr: "version 99",
		},
		{
			name: "seq regression",
			recs: []obswatch.Incident{
				{State: "open", Rule: "r", Target: "t", Series: "s", TimeUnixMilli: 1},
				{State: "open", Rule: "r2", Target: "t", Series: "s", TimeUnixMilli: 2},
			},
			munge: func(s string) string {
				return strings.Replace(s, `"seq":2`, `"seq":1`, 1)
			},
			wantErr: "seq 1 after 1",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, strings.ReplaceAll(tc.name, " ", "_")+".jsonl")
			writeIncidents(t, path, tc.recs)
			if tc.munge != nil {
				b, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(tc.munge(string(b))), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			var out, errOut bytes.Buffer
			if code := run([]string{"-incidents", path}, &out, &errOut); code == 0 {
				t.Fatalf("invalid log accepted:\n%s", out.String())
			}
			if !strings.Contains(errOut.String(), tc.wantErr) {
				t.Fatalf("stderr %q missing %q", errOut.String(), tc.wantErr)
			}
		})
	}
}

// TestIncidentsFleetSummary checks the combined summary across two logs.
func TestIncidentsFleetSummary(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	writeIncidents(t, a, []obswatch.Incident{
		{State: "open", Rule: "r", Target: "t1", Series: "s", TimeUnixMilli: 1, OpenedUnixMilli: 1},
		{State: "resolved", Rule: "r", Target: "t1", Series: "s",
			TimeUnixMilli: 2, OpenedUnixMilli: 1, DurationSeconds: 0.001},
	})
	writeIncidents(t, b, []obswatch.Incident{
		{State: "open", Rule: "r", Target: "t2", Series: "s", TimeUnixMilli: 3, OpenedUnixMilli: 3},
	})
	var out, errOut bytes.Buffer
	if code := run([]string{"-incidents", a, b}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "fleet (2 logs): 3 incident records (2 opened, 1 resolved, 1 still burning)") {
		t.Fatalf("missing fleet summary:\n%s", out.String())
	}
}
