// Command tracecat validates and summarizes a JSONL trace written by the
// obs tracer (harvestd -trace, harvest -trace). It checks the structural
// invariants — every line parses, IDs are unique, every parent reference
// resolves — and prints per-name span counts and durations, so CI can
// assert a trace is well-formed and a human can see where time went.
//
// Usage:
//
//	tracecat FILE...
//
// Exit status is non-zero if any file fails validation.
package main

import (
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecat FILE...")
		os.Exit(2)
	}
	code := 0
	for _, path := range os.Args[1:] {
		if err := catFile(os.Stdout, path); err != nil {
			fmt.Fprintf(os.Stderr, "tracecat: %s: %v\n", path, err)
			code = 1
		}
	}
	os.Exit(code)
}

func catFile(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := obs.ReadTrace(f)
	if err != nil {
		return err
	}
	return summarize(w, path, recs)
}

// summarize prints one line per distinct span/event name, sorted, with
// counts and total duration, then roots and overall bounds.
func summarize(w io.Writer, path string, recs []obs.Record) error {
	type agg struct {
		kind  string
		count int
		durUS int64
	}
	byName := make(map[string]*agg)
	spans, events, roots := 0, 0, 0
	var minStart, maxEnd int64
	for i, r := range recs {
		a := byName[r.Name]
		if a == nil {
			a = &agg{kind: r.Type}
			byName[r.Name] = a
		}
		a.count++
		a.durUS += r.DurUS
		if r.Type == "span" {
			spans++
		} else {
			events++
		}
		if r.Parent == 0 {
			roots++
		}
		if end := r.StartUS + r.DurUS; i == 0 || end > maxEnd {
			maxEnd = end
		}
		if i == 0 || r.StartUS < minStart {
			minStart = r.StartUS
		}
	}
	fmt.Fprintf(w, "%s: %d records (%d spans, %d events, %d roots), %.3fs traced\n",
		path, len(recs), spans, events, roots, float64(maxEnd-minStart)/1e6)
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := byName[name]
		fmt.Fprintf(w, "  %-28s %-5s ×%-5d %.3fs\n", name, a.kind, a.count, float64(a.durUS)/1e6)
	}
	return nil
}
