// Command tracecat validates and summarizes JSONL traces written by the
// obs tracer (harvestd -trace, harvest -trace). It checks the structural
// invariants — every line parses, IDs are unique, every parent reference
// resolves — and prints per-name span counts and durations, so CI can
// assert a trace is well-formed and a human can see where time went.
//
// With -incidents the inputs are instead fleetwatch incident logs
// (versioned JSONL, one alert open/resolve per line): tracecat validates
// the record invariants — version, monotone sequence numbers, resolves
// pairing with opens — and summarizes counts by rule, open vs resolved,
// and the longest-burning incidents.
//
// Usage:
//
//	tracecat [-incidents] FILE|GLOB...
//
// Each argument may be a literal path or a glob pattern (quoted so the
// shell does not expand it), so a sharded fleet's traces validate in one
// invocation: tracecat 'shard-*.trace'. When more than one file is given,
// a combined fleet summary follows the per-file ones — the per-shard
// traces viewed as one run. Exit status is non-zero if any argument fails
// validation or matches nothing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable main: parses flags, dispatches to the trace or
// incident summarizer, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracecat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	incidents := fs.Bool("incidents", false,
		"inputs are fleetwatch incident JSONL logs, not traces")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	paths, err := expandArgs(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "usage: tracecat [-incidents] FILE|GLOB...")
		fmt.Fprintln(stderr, "tracecat:", err)
		return 2
	}
	if *incidents {
		return catIncidents(stdout, stderr, paths)
	}
	code := 0
	var fleet []obs.Record
	valid := 0
	for _, path := range paths {
		recs, err := catFile(stdout, path)
		if err != nil {
			fmt.Fprintf(stderr, "tracecat: %s: %v\n", path, err)
			code = 1
			continue
		}
		fleet = append(fleet, recs...)
		valid++
	}
	if valid > 1 {
		summarize(stdout, fmt.Sprintf("fleet (%d traces)", valid), fleet)
	}
	return code
}

// expandArgs resolves each argument: glob patterns expand to their matches
// (a pattern matching nothing is an error — a fleet run that produced no
// traces should fail loudly, not validate vacuously), literal paths pass
// through so a missing file is reported per-file with exit code 1.
func expandArgs(args []string) ([]string, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("no trace files given")
	}
	var paths []string
	for _, arg := range args {
		matches, err := filepath.Glob(arg)
		if err != nil {
			return nil, fmt.Errorf("bad pattern %q: %w", arg, err)
		}
		switch {
		case len(matches) > 0:
			sort.Strings(matches)
			paths = append(paths, matches...)
		case hasGlobMeta(arg):
			return nil, fmt.Errorf("pattern %q matches no files", arg)
		default:
			paths = append(paths, arg)
		}
	}
	return paths, nil
}

// hasGlobMeta reports whether the argument was a pattern rather than a
// literal path.
func hasGlobMeta(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '*', '?', '[', '\\':
			return true
		}
	}
	return false
}

// catFile validates and summarizes one trace, returning its records so the
// caller can fold them into the fleet-wide summary.
func catFile(w io.Writer, path string) ([]obs.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := obs.ReadTrace(f)
	if err != nil {
		return nil, err
	}
	return recs, summarize(w, path, recs)
}

// summarize prints one line per distinct span/event name, sorted, with
// counts and total duration, then roots and overall bounds. The records may
// come from one trace or from several concatenated ones (span IDs need not
// be unique across files; per-file validation already ran in catFile).
func summarize(w io.Writer, label string, recs []obs.Record) error {
	type agg struct {
		kind  string
		count int
		durUS int64
	}
	byName := make(map[string]*agg)
	spans, events, roots := 0, 0, 0
	var minStart, maxEnd int64
	for i, r := range recs {
		a := byName[r.Name]
		if a == nil {
			a = &agg{kind: r.Type}
			byName[r.Name] = a
		}
		a.count++
		a.durUS += r.DurUS
		if r.Type == "span" {
			spans++
		} else {
			events++
		}
		if r.Parent == 0 {
			roots++
		}
		if end := r.StartUS + r.DurUS; i == 0 || end > maxEnd {
			maxEnd = end
		}
		if i == 0 || r.StartUS < minStart {
			minStart = r.StartUS
		}
	}
	fmt.Fprintf(w, "%s: %d records (%d spans, %d events, %d roots), %.3fs traced\n",
		label, len(recs), spans, events, roots, float64(maxEnd-minStart)/1e6)
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := byName[name]
		fmt.Fprintf(w, "  %-28s %-5s ×%-5d %.3fs\n", name, a.kind, a.count, float64(a.durUS)/1e6)
	}
	return nil
}
