package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestTracecatValidTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	clk := &obs.FixedClock{T: time.Unix(100, 0)}
	tr := obs.NewTracer(f, clk)
	root := tr.Start("experiment/demo", nil, nil)
	for i := 0; i < 3; i++ {
		sp := tr.Start("replicates", root, map[string]any{"n": 10})
		clk.Advance(time.Second)
		sp.End()
	}
	tr.Event("checkpoint", root, nil)
	root.End()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := catFile(&out, path); err != nil {
		t.Fatalf("catFile: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"5 records (4 spans, 1 events, 1 roots)",
		"experiment/demo",
		"replicates",
		"×3",
		"checkpoint",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
}

func TestTracecatRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"garbage.jsonl": "not json\n",
		"orphan.jsonl":  `{"type":"span","id":1,"parent":99,"name":"x","start_us":0,"dur_us":1}` + "\n",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := catFile(&out, path); err == nil {
			t.Errorf("%s: catFile accepted a malformed trace", name)
		}
	}
	if err := catFile(&bytes.Buffer{}, filepath.Join(dir, "absent.jsonl")); err == nil {
		t.Error("catFile accepted a missing file")
	}
}
