package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// writeTrace materializes a small valid trace with nSpans replicate spans.
func writeTrace(t *testing.T, path string, root string, nSpans int) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	clk := &obs.FixedClock{T: time.Unix(100, 0)}
	tr := obs.NewTracer(f, clk)
	rs := tr.Start(root, nil, nil)
	for i := 0; i < nSpans; i++ {
		sp := tr.Start("replicates", rs, map[string]any{"n": 10})
		clk.Advance(time.Second)
		sp.End()
	}
	tr.Event("checkpoint", rs, nil)
	rs.End()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTracecatValidTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	writeTrace(t, path, "experiment/demo", 3)

	var out bytes.Buffer
	recs, err := catFile(&out, path)
	if err != nil {
		t.Fatalf("catFile: %v\n%s", err, out.String())
	}
	if len(recs) != 5 {
		t.Fatalf("catFile returned %d records, want 5", len(recs))
	}
	got := out.String()
	for _, want := range []string{
		"5 records (4 spans, 1 events, 1 roots)",
		"experiment/demo",
		"replicates",
		"×3",
		"checkpoint",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
}

func TestTracecatRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"garbage.jsonl": "not json\n",
		"orphan.jsonl":  `{"type":"span","id":1,"parent":99,"name":"x","start_us":0,"dur_us":1}` + "\n",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if _, err := catFile(&out, path); err == nil {
			t.Errorf("%s: catFile accepted a malformed trace", name)
		}
	}
	if _, err := catFile(&bytes.Buffer{}, filepath.Join(dir, "absent.jsonl")); err == nil {
		t.Error("catFile accepted a missing file")
	}
}

func TestExpandArgsGlob(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"shard-2.trace", "shard-0.trace", "shard-1.trace", "other.log"} {
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// A glob expands sorted, so fleet summaries are deterministic.
	got, err := expandArgs([]string{filepath.Join(dir, "shard-*.trace")})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		filepath.Join(dir, "shard-0.trace"),
		filepath.Join(dir, "shard-1.trace"),
		filepath.Join(dir, "shard-2.trace"),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("expandArgs = %v, want %v", got, want)
	}

	// Literal paths pass through even when absent (reported per-file later);
	// globs matching nothing fail up front.
	lit := filepath.Join(dir, "absent.trace")
	if got, err := expandArgs([]string{lit}); err != nil || !reflect.DeepEqual(got, []string{lit}) {
		t.Errorf("literal path: %v, %v", got, err)
	}
	if _, err := expandArgs([]string{filepath.Join(dir, "nope-*.trace")}); err == nil {
		t.Error("empty glob should fail")
	}
	if _, err := expandArgs(nil); err == nil {
		t.Error("no args should fail")
	}

	// Globs and literals mix.
	got, err = expandArgs([]string{filepath.Join(dir, "shard-*.trace"), filepath.Join(dir, "other.log")})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("mixed args = %v", got)
	}
}

// TestTracecatFleetSummary validates several per-shard traces and checks
// their combined summary counts every shard's records as one run.
func TestTracecatFleetSummary(t *testing.T) {
	dir := t.TempDir()
	for i, n := range []int{2, 3, 4} {
		writeTrace(t, filepath.Join(dir, "shard-"+string(rune('0'+i))+".trace"), "harvestd/run", n)
	}
	paths, err := expandArgs([]string{filepath.Join(dir, "shard-*.trace")})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	var fleet []obs.Record
	for _, p := range paths {
		recs, err := catFile(&out, p)
		if err != nil {
			t.Fatalf("catFile(%s): %v", p, err)
		}
		fleet = append(fleet, recs...)
	}
	if err := summarize(&out, "fleet (3 traces)", fleet); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	// 3 traces × (1 root + n replicate spans + 1 event): 15 records total,
	// 12 spans, 3 events, 3 roots, 9 replicates.
	for _, want := range []string{
		"fleet (3 traces): 15 records (12 spans, 3 events, 3 roots)",
		"×9",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("fleet summary missing %q:\n%s", want, got)
		}
	}
}
