package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/harvestd"
)

func TestParseShards(t *testing.T) {
	got, err := parseShards("a=http://h1:1/,b=http://h2:2")
	if err != nil {
		t.Fatal(err)
	}
	want := []fleet.Shard{
		{Name: "a", URL: "http://h1:1"}, // trailing slash trimmed
		{Name: "b", URL: "http://h2:2"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseShards = %+v, want %+v", got, want)
	}
	for _, spec := range []string{"", ",", "nameonly", "=http://x", "a="} {
		if _, err := parseShards(spec); err == nil {
			t.Errorf("parseShards(%q): expected error", spec)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	ctx := context.Background()
	for _, args := range [][]string{
		{},
		{"-shards", "bad spec"},
		{"-shards", "a=http://x", "positional"},
		{"-shards", "a=http://x", "-addr", "256.0.0.1:bad"},
	} {
		if err := run(ctx, args, io.Discard, nil); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

// fakeShard serves a fixed snapshot the way a harvestd shard would.
func fakeShard(t *testing.T, shardID string, n int) *httptest.Server {
	t.Helper()
	var acc harvestd.Accum
	for i := 0; i < n; i++ {
		acc.Fold(0.5, 0.5, float64(i%7)/8, 10, harvestd.DefaultPropensityFloor)
	}
	snap := &harvestd.StateSnapshot{
		Version:  harvestd.SnapshotVersion,
		ShardID:  shardID,
		Seq:      1,
		Clip:     10,
		Floor:    harvestd.DefaultPropensityFloor,
		Counters: harvestd.SnapshotCounters{Lines: int64(n), Ingested: int64(n), Folded: int64(n)},
		Policies: map[string]harvestd.Accum{"uniform": acc},
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/snapshot" {
			http.NotFound(w, r)
			return
		}
		if err := harvestd.EncodeSnapshot(w, snap); err != nil {
			t.Errorf("encode: %v", err)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestRunAggregatesFleet drives the binary's lifecycle: boot against two
// fake shards, serve their merged estimates, shut down on signal.
func TestRunAggregatesFleet(t *testing.T) {
	s1 := fakeShard(t, "shard-a", 40)
	s2 := fakeShard(t, "shard-b", 60)

	ready := make(chan string, 1)
	errc := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		errc <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-shards", "shard-a=" + s1.URL + ",shard-b=" + s2.URL,
			"-pull-interval", "20ms",
		}, io.Discard, ready)
	}()
	var base string
	select {
	case base = <-ready:
	case err := <-errc:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for startup")
	}

	deadline := time.Now().Add(30 * time.Second)
	var ests []harvestd.PolicyEstimate
	for {
		resp, err := http.Get(base + "/estimates")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&ests)
		resp.Body.Close()
		if err == nil && len(ests) == 1 && ests[0].N == 100 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("merged estimates never reached n=100: %+v", ests)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if ests[0].Policy != "uniform" {
		t.Errorf("estimates = %+v", ests)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `harvestagg_shard_up{shard="shard-a"} 1`) {
		t.Errorf("metrics missing shard-a liveness:\n%s", body)
	}

	cancel() // SIGTERM
	if err := <-errc; err != nil {
		t.Fatalf("run exited: %v", err)
	}
}
