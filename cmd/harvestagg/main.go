// Command harvestagg runs the fleet aggregation tier: it periodically
// pulls per-shard estimator snapshots from N harvestd /snapshot endpoints,
// merges them through the order-insensitive accumulator merge, and serves
// fleet-wide /estimates, /diagnostics, /shards, /route, and /metrics from
// the merged state. Shards that stop answering are retried with backoff and
// dropped from the merge once their last snapshot ages past -stale-after;
// estimates degrade gracefully (coverage shrinks, intervals widen) and
// recover when the shard returns.
//
// Usage:
//
//	harvestagg -shards NAME=URL,NAME=URL,... [-addr HOST:PORT]
//	           [-pull-interval D] [-pull-timeout D] [-stale-after D]
//	           [-max-backoff D] [-delta F] [-checkpoint PATH]
//	           [-checkpoint-interval D] [-debug-addr HOST:PORT]
//
// The aggregator runs until SIGINT/SIGTERM, then writes a final checkpoint
// (when -checkpoint is set) and prints the merged estimates. A restart with
// the same -checkpoint resumes serving the last pulled state immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "harvestagg:", err)
		os.Exit(1)
	}
}

// run wires flags → aggregator, serves until ctx is cancelled (the SIGTERM
// path), then shuts down gracefully. When ready is non-nil the API base URL
// is sent on it after startup — the hook the tests use to drive a full
// aggregator lifecycle in-process.
func run(ctx context.Context, args []string, stdout io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("harvestagg", flag.ContinueOnError)
	shardsSpec := fs.String("shards", "", "fleet shards as NAME=URL,NAME=URL,... (required)")
	addr := fs.String("addr", "127.0.0.1:8348", "HTTP API listen address")
	pullInterval := fs.Duration("pull-interval", 2*time.Second, "per-shard snapshot poll period")
	pullTimeout := fs.Duration("pull-timeout", 5*time.Second, "per-pull request timeout")
	staleAfter := fs.Duration("stale-after", 30*time.Second,
		"drop a shard from the merge when its last snapshot is older than this (<=0 never)")
	maxBackoff := fs.Duration("max-backoff", 30*time.Second, "cap on per-shard retry backoff")
	delta := fs.Float64("delta", 0.05, "default interval failure probability")
	checkpoint := fs.String("checkpoint", "", "aggregator checkpoint file (empty disables)")
	ckptEvery := fs.Duration("checkpoint-interval", 30*time.Second, "time between checkpoints")
	debugAddr := fs.String("debug-addr", "", "pprof/expvar listen address (empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	shards, err := parseShards(*shardsSpec)
	if err != nil {
		return err
	}

	a, err := fleet.New(fleet.Config{
		Shards:             shards,
		PullInterval:       *pullInterval,
		PullTimeout:        *pullTimeout,
		MaxBackoff:         *maxBackoff,
		StaleAfter:         *staleAfter,
		Delta:              *delta,
		Addr:               *addr,
		CheckpointPath:     *checkpoint,
		CheckpointInterval: *ckptEvery,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(stdout, format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}

	debug, err := obs.StartDebug(*debugAddr)
	if err != nil {
		return err
	}
	if debug != nil {
		defer func() { _ = debug.Close() }()
		fmt.Fprintf(stdout, "harvestagg: debug (pprof/expvar) on http://%s/debug/pprof/\n", debug.Addr())
	}

	if err := a.Start(ctx); err != nil {
		return err
	}
	names := make([]string, len(shards))
	for i, s := range shards {
		names[i] = s.Name
	}
	fmt.Fprintf(stdout, "harvestagg: aggregating %s on %s\n", strings.Join(names, ", "), a.URL())
	if ready != nil {
		ready <- a.URL()
	}

	<-ctx.Done()
	fmt.Fprintln(stdout, "harvestagg: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := a.Shutdown(sctx); err != nil {
		return err
	}
	for _, pe := range a.Estimates(*delta) {
		fmt.Fprintf(stdout, "harvestagg: %-14s n=%-8d snips=%.6f ± %.6f\n",
			pe.Policy, pe.N, pe.SNIPS.Value, pe.SNIPS.StdErr)
	}
	return nil
}

// parseShards parses "a=http://h1:p,b=http://h2:p" into the fleet config.
func parseShards(spec string) ([]fleet.Shard, error) {
	var out []fleet.Shard
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, url, ok := strings.Cut(item, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad shard %q (want NAME=URL)", item)
		}
		out = append(out, fleet.Shard{Name: name, URL: strings.TrimSuffix(url, "/")})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no shards given (want -shards NAME=URL,...)")
	}
	return out, nil
}
