// Command rolloutd closes the harvesting loop: it watches a harvestd (or
// harvestagg) /estimates + /diagnostics surface and drives one candidate
// policy through a guarded staged rollout — shadow (counterfactual
// evaluation only) → canary epsilon ramp → full — promoting only when the
// empirical-Bernstein intervals separate AND the anytime-valid sequential
// test agrees, and rolling back automatically on a confirmed regression or
// estimator-health collapse (ESS floor, clip ceiling, stale estimates).
// The chosen traffic share is pushed to an actuation endpoint (lbd's
// -admin-addr /share), and every gate decision is served machine-readable
// on /gates.
//
// Usage:
//
//	rolloutd -harvest URL -candidate NAME -baseline NAME
//	         [-actuate URL] [-objective max|min] [-estimator clipped_ips|ips]
//	         [-delta F] [-shares 0.01,0.05,0.25] [-min-samples N]
//	         [-term-hi F] [-ess-floor F] [-clip-ceiling F] [-stale-after D]
//	         [-poll-interval D] [-addr HOST:PORT]
//	         [-checkpoint PATH] [-checkpoint-interval D] [-trace PATH]
//	         [-debug-addr HOST:PORT]
//
// rolloutd runs until SIGINT/SIGTERM (writing a final checkpoint when
// -checkpoint is set), then prints the stage history. A restart with the
// same -checkpoint resumes the state machine exactly where it stopped and
// re-asserts the current share on the actuation target.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/rollout"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "rolloutd:", err)
		os.Exit(1)
	}
}

// run wires flags → controller, serves until ctx is cancelled, then shuts
// down gracefully. When ready is non-nil the API base URL is sent on it
// after startup — the hook the tests use to drive a full lifecycle
// in-process.
func run(ctx context.Context, args []string, stdout io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("rolloutd", flag.ContinueOnError)
	harvest := fs.String("harvest", "", "harvestd or harvestagg base URL (required)")
	candidate := fs.String("candidate", "", "candidate policy name on the harvest surface (required)")
	baseline := fs.String("baseline", "", "baseline policy name on the harvest surface (required)")
	actuate := fs.String("actuate", "", "share actuation endpoint, e.g. http://host:port/share (empty = observe only)")
	objective := fs.String("objective", "max", "whether larger estimates are better: max or min")
	estimator := fs.String("estimator", "clipped_ips", "served estimator to gate on: clipped_ips or ips")
	delta := fs.Float64("delta", 0.05, "per-gate interval failure probability")
	sharesSpec := fs.String("shares", "0.01,0.05,0.25", "canary share ramp, strictly increasing in (0,1)")
	minSamples := fs.Int64("min-samples", 200, "new candidate samples required per stage before promotion")
	termHi := fs.Float64("term-hi", 1, "upper bound on per-datapoint estimator terms (clip x max reward)")
	essFloor := fs.Float64("ess-floor", 0.05, "roll back below this candidate ESS fraction (negative disables)")
	clipCeiling := fs.Float64("clip-ceiling", 0.25, "roll back above this candidate clip fraction (<=0 disables)")
	staleAfter := fs.Duration("stale-after", 5*time.Minute, "roll back when no new candidate samples for this long (<=0 disables)")
	pollInterval := fs.Duration("poll-interval", 2*time.Second, "control cycle period")
	addr := fs.String("addr", "127.0.0.1:8448", "HTTP API listen address")
	checkpoint := fs.String("checkpoint", "", "controller checkpoint file (empty disables)")
	ckptEvery := fs.Duration("checkpoint-interval", 30*time.Second, "time between checkpoints")
	tracePath := fs.String("trace", "", "JSONL trace output file (empty disables)")
	debugAddr := fs.String("debug-addr", "", "pprof/expvar listen address (empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *harvest == "" {
		return fmt.Errorf("missing -harvest URL")
	}
	shares, err := parseShares(*sharesSpec)
	if err != nil {
		return err
	}

	var tracer *obs.Tracer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return fmt.Errorf("creating trace file: %w", err)
		}
		defer func() { _ = f.Close() }()
		tracer = obs.NewTracer(f, nil)
	}

	var act rollout.Actuator
	if *actuate != "" {
		act = &rollout.HTTPActuator{URL: *actuate}
	}

	c, err := rollout.New(rollout.Config{
		Candidate:          *candidate,
		Baseline:           *baseline,
		Objective:          rollout.Objective(*objective),
		Estimator:          *estimator,
		Delta:              *delta,
		CanaryShares:       shares,
		MinStageSamples:    *minSamples,
		TermHi:             *termHi,
		ESSFloor:           *essFloor,
		ClipCeiling:        *clipCeiling,
		StaleAfter:         *staleAfter,
		PollInterval:       *pollInterval,
		Addr:               *addr,
		CheckpointPath:     *checkpoint,
		CheckpointInterval: *ckptEvery,
		Harvest:            &rollout.HTTPHarvest{BaseURL: strings.TrimSuffix(*harvest, "/")},
		Actuator:           act,
		Tracer:             tracer,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(stdout, format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}

	debug, err := obs.StartDebug(*debugAddr)
	if err != nil {
		return err
	}
	if debug != nil {
		defer func() { _ = debug.Close() }()
		fmt.Fprintf(stdout, "rolloutd: debug (pprof/expvar) on http://%s/debug/pprof/\n", debug.Addr())
	}

	if err := c.Start(ctx); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "rolloutd: gating %s vs %s from %s on %s\n",
		*candidate, *baseline, *harvest, c.URL())
	if ready != nil {
		ready <- c.URL()
	}

	<-ctx.Done()
	fmt.Fprintln(stdout, "rolloutd: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := c.Shutdown(sctx); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "rolloutd: final stage=%s share=%g\n", c.Stage(), c.Share())
	for _, tr := range c.Transitions() {
		fmt.Fprintf(stdout, "rolloutd: %s -> %s (share %g) at poll %d: %s\n",
			tr.From, tr.To, tr.Share, tr.AtPoll, tr.Reason)
	}
	return nil
}

// parseShares parses "0.01,0.05,0.25" into the canary ramp.
func parseShares(spec string) ([]float64, error) {
	var out []float64
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		v, err := strconv.ParseFloat(item, 64)
		if err != nil {
			return nil, fmt.Errorf("bad share %q: %w", item, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no canary shares given (want -shares 0.01,0.05,0.25)")
	}
	return out, nil
}
