package main

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harvestd"
	"repro/internal/rollout"
)

func TestParseShares(t *testing.T) {
	got, err := parseShares(" 0.01, 0.05 ,0.25 ")
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{0.01, 0.05, 0.25}; !reflect.DeepEqual(got, want) {
		t.Fatalf("parseShares = %v, want %v", got, want)
	}
	for _, spec := range []string{"", ",", "a,b", "0.1,zap"} {
		if _, err := parseShares(spec); err == nil {
			t.Errorf("parseShares(%q): expected error", spec)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	ctx := context.Background()
	for _, args := range [][]string{
		{},
		{"-harvest", "http://x", "-candidate", "c"}, // missing baseline
		{"-harvest", "http://x", "-candidate", "c", "-baseline", "b", "-shares", "0.5,0.1"},
		{"-harvest", "http://x", "-candidate", "c", "-baseline", "b", "-objective", "sideways"},
		{"-harvest", "http://x", "-candidate", "c", "-baseline", "b", "positional"},
	} {
		if err := run(ctx, args, io.Discard, nil); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

// growingHarvest is a self-advancing fake harvestd: every /estimates poll
// appends a fresh batch per arm before serving, so a controller polling it
// sees a live, steadily accumulating stream.
type growingHarvest struct {
	mu                 sync.Mutex
	candN, baseN       int64
	candSum, candSumSq float64
	baseSum, baseSumSq float64
}

func (g *growingHarvest) grow() {
	const dn, candMean, baseMean, sd = 300, 0.8, 0.5, 0.05
	g.candN += dn
	g.candSum += candMean * dn
	g.candSumSq += dn * (sd*sd + candMean*candMean)
	g.baseN += dn
	g.baseSum += baseMean * dn
	g.baseSumSq += dn * (sd*sd + baseMean*baseMean)
}

func estOf(n int64, sum, sumSq float64) harvestd.EstimatorValue {
	if n < 2 {
		return harvestd.EstimatorValue{}
	}
	nf := float64(n)
	v := sum / nf
	va := (sumSq - nf*v*v) / (nf - 1)
	if va < 0 {
		va = 0
	}
	return harvestd.EstimatorValue{Value: v, StdErr: math.Sqrt(va / nf)}
}

func (g *growingHarvest) serve(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/estimates", func(w http.ResponseWriter, r *http.Request) {
		g.mu.Lock()
		defer g.mu.Unlock()
		g.grow()
		cand := estOf(g.candN, g.candSum, g.candSumSq)
		base := estOf(g.baseN, g.baseSum, g.baseSumSq)
		_ = json.NewEncoder(w).Encode([]harvestd.PolicyEstimate{
			{Policy: "better", N: g.candN, MatchRate: 1, IPS: cand, ClippedIPS: cand, SNIPS: cand},
			{Policy: "incumbent", N: g.baseN, MatchRate: 1, IPS: base, ClippedIPS: base, SNIPS: base},
		})
	})
	mux.HandleFunc("/diagnostics", func(w http.ResponseWriter, r *http.Request) {
		g.mu.Lock()
		defer g.mu.Unlock()
		_ = json.NewEncoder(w).Encode(harvestd.DiagnosticsReport{
			Workers: 4,
			Policies: []harvestd.PolicyDiagnostics{
				{Policy: "better", N: g.candN, ESSFraction: 1},
				{Policy: "incumbent", N: g.baseN, ESSFraction: 1},
			},
		})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestRunPromotesToFull drives the binary's lifecycle: boot against a fake
// harvestd serving a clearly better candidate and an actuation endpoint,
// watch the controller walk the whole ramp to full, then shut down on
// signal.
func TestRunPromotesToFull(t *testing.T) {
	fake := (&growingHarvest{}).serve(t)

	var actMu sync.Mutex
	var actuated []float64
	actSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Share float64 `json:"share"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		actMu.Lock()
		actuated = append(actuated, body.Share)
		actMu.Unlock()
		w.Write([]byte("{}"))
	}))
	t.Cleanup(actSrv.Close)

	ready := make(chan string, 1)
	errc := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		errc <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-harvest", fake.URL,
			"-candidate", "better",
			"-baseline", "incumbent",
			"-actuate", actSrv.URL,
			"-poll-interval", "20ms",
			"-min-samples", "200",
		}, io.Discard, ready)
	}()
	var base string
	select {
	case base = <-ready:
	case err := <-errc:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for startup")
	}

	deadline := time.Now().Add(30 * time.Second)
	var st rollout.Status
	for {
		resp, err := http.Get(base + "/status")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err == nil && st.Stage == rollout.StageFull {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached full: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Share != 1 {
		t.Fatalf("full stage share %g, want 1", st.Share)
	}
	if len(st.Transitions) != 4 {
		t.Fatalf("transitions %+v, want 4 (shadow->1%%->5%%->25%%->full)", st.Transitions)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `rolloutd_stage{stage="full"} 1`) {
		t.Errorf("metrics missing full-stage gauge:\n%s", body)
	}

	actMu.Lock()
	lastShare := actuated[len(actuated)-1]
	actMu.Unlock()
	if lastShare != 1 {
		t.Fatalf("last actuated share %g, want 1", lastShare)
	}

	cancel() // SIGTERM path
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for shutdown")
	}
}
