// Command cacheload drives a RESP cache server (cmd/cached, or any
// sequentially-consistent subset of Redis) with the paper's big/small
// workload over real TCP, read-through style: GET, and on a miss SET a
// value of the item's size. It reports the server-side hitrate from INFO —
// the "deploy and measure it in our prototype" step of §3, over the wire.
//
// Usage:
//
//	cached -policy freqsize &
//	cacheload -addr 127.0.0.1:6399 -n 60000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/cachesim"
	"repro/internal/resp"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cacheload:", err)
		os.Exit(1)
	}
}

// run drives the workload and writes the report to w.
func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("cacheload", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:6399", "cache server address")
	n := fs.Int("n", 60000, "requests to send")
	seed := fs.Int64("seed", 1, "workload RNG seed")
	pipeline := fs.Int("pipeline", 32, "commands per pipelined batch (1 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("n must be positive")
	}
	if *pipeline < 1 {
		return fmt.Errorf("pipeline must be ≥ 1")
	}
	cli, err := resp.Dial(*addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer cli.Close()
	if _, err := cli.Do("FLUSHALL"); err != nil {
		return fmt.Errorf("flush: %w", err)
	}

	wload := cachesim.DefaultBigSmall()
	r := stats.NewRand(*seed)
	start := time.Now()
	// Read-through over the wire. Pipelining batches the GETs; misses are
	// SET in a follow-up batch.
	batch := make([]cachesim.Request, 0, *pipeline)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		pipe := cli.Pipeline()
		for _, req := range batch {
			pipe.Queue("GET", req.Key)
		}
		replies, err := pipe.Exec()
		if err != nil {
			return err
		}
		setPipe := cli.Pipeline()
		sets := 0
		for i, reply := range replies {
			if reply.Type == resp.Error {
				return fmt.Errorf("server error: %s", reply.Str)
			}
			if reply.Null {
				req := batch[i]
				// Value payload sized so key+value ≈ the item size.
				pad := int(req.Size) - len(req.Key)
				if pad < 1 {
					pad = 1
				}
				setPipe.Queue("SET", req.Key, strings.Repeat("x", pad))
				sets++
			}
		}
		if sets > 0 {
			if _, err := setPipe.Exec(); err != nil {
				return err
			}
		}
		batch = batch[:0]
		return nil
	}
	for i := 0; i < *n; i++ {
		batch = append(batch, wload.Draw(r))
		if len(batch) >= *pipeline {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	elapsed := time.Since(start)

	info, err := cli.Do("INFO")
	if err != nil {
		return fmt.Errorf("info: %w", err)
	}
	fmt.Fprintf(w, "sent %d requests in %v (%.0f req/s, pipeline %d)\n",
		*n, elapsed.Round(time.Millisecond), float64(*n)/elapsed.Seconds(), *pipeline)
	for _, line := range strings.Split(info.Str, "\r\n") {
		for _, key := range []string{"keyspace_hits", "keyspace_misses", "evicted_keys", "hit_rate", "used_memory", "maxmemory"} {
			if strings.HasPrefix(line, key+":") {
				fmt.Fprintln(w, line)
			}
		}
	}
	return nil
}
