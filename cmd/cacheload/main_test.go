package main

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/resp"
	"repro/internal/stats"
)

// startServer brings up an in-process RESP cache server for the load test.
func startServer(t *testing.T, ev cachesim.Evictor) string {
	t.Helper()
	w := cachesim.DefaultBigSmall()
	var srv *resp.Server
	cache, err := cachesim.New(cachesim.Config{
		MaxBytes:   w.TotalBytes() / 2,
		SampleSize: 10,
		OnEvict:    func(key string) { srv.OnEvict(key) },
	}, ev, stats.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	srv, err = resp.NewServer(cache)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr.String()
}

// hitRateFrom extracts the hit_rate line from the report.
func hitRateFrom(t *testing.T, report string) float64 {
	t.Helper()
	for _, line := range strings.Split(report, "\n") {
		if rest, ok := strings.CutPrefix(line, "hit_rate:"); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no hit_rate in report:\n%s", report)
	return 0
}

func TestCacheloadEndToEnd(t *testing.T) {
	addr := startServer(t, cachesim.RandomEvictor{R: stats.NewRand(1)})
	var out bytes.Buffer
	if err := run(&out, []string{"-addr", addr, "-n", "20000", "-pipeline", "32"}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"keyspace_hits:", "keyspace_misses:", "hit_rate:", "evicted_keys:"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	// The wire-level hitrate should be in the Table-3 band for random
	// eviction at half-working-set budget.
	if hr := hitRateFrom(t, s); hr < 0.35 || hr > 0.60 {
		t.Errorf("wire hitrate %v outside the Table-3 band", hr)
	}
}

func TestCacheloadFreqSizeBeatsRandomOverWire(t *testing.T) {
	// The Table 3 headline, end to end over TCP: the size-aware evictor's
	// wire hitrate clearly beats random's.
	runWith := func(ev cachesim.Evictor) float64 {
		addr := startServer(t, ev)
		var out bytes.Buffer
		if err := run(&out, []string{"-addr", addr, "-n", "30000"}); err != nil {
			t.Fatal(err)
		}
		return hitRateFrom(t, out.String())
	}
	random := runWith(cachesim.RandomEvictor{R: stats.NewRand(3)})
	fs := runWith(cachesim.FreqSizeEvictor{})
	if fs < random+0.05 {
		t.Errorf("freq/size %v should beat random %v by ≥5 points over the wire", fs, random)
	}
}

func TestCacheloadUnpipelined(t *testing.T) {
	addr := startServer(t, cachesim.LRUEvictor{})
	var out bytes.Buffer
	if err := run(&out, []string{"-addr", addr, "-n", "500", "-pipeline", "1"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pipeline 1") {
		t.Errorf("report should note pipeline setting:\n%s", out.String())
	}
}

func TestCacheloadValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, []string{"-n", "0"}); err == nil {
		t.Error("n=0 should fail")
	}
	if err := run(&out, []string{"-pipeline", "0"}); err == nil {
		t.Error("pipeline=0 should fail")
	}
	if err := run(&out, []string{"-addr", "127.0.0.1:1", "-n", "10"}); err == nil {
		t.Error("dead server should fail")
	}
}
