package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestRunDispatchesEveryExperiment(t *testing.T) {
	// Smoke-run the cheap experiments at full size and the expensive ones
	// in quick mode, checking each prints its identifying header.
	cases := []struct {
		name   string
		quick  bool
		header string
	}{
		{"fig1", false, "Fig 1"},
		{"fig2", false, "Fig 2"},
		{"fig4", false, "Fig 4"},
		{"table2", true, "Table 2"},
		{"table3", true, "Table 3"},
		{"fig6", true, "Fig 6"},
		{"eq1", true, "Eq. 1"},
		{"loop", true, "Continuous"},
		{"drift", true, "A2 violation"},
		{"rollout", true, "Staged rollout"},
		{"zipf", true, "Workload contrast"},
		{"p99", true, "Tail latency"},
		{"longterm", true, "Long-term effects"},
		{"ablate", true, "Ablation"},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := run(&buf, c.name, 1, c.quick, 0, nil); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !strings.Contains(buf.String(), c.header) {
			t.Errorf("%s output missing %q:\n%s", c.name, c.header, buf.String())
		}
	}
}

func TestRunFig3Quick(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig3", 1, true, 0, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig 3") {
		t.Errorf("missing header:\n%s", buf.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope", 1, false, 1, nil); err == nil {
		t.Error("unknown experiment should fail")
	}
}

// tickClock is a deterministic virtual clock: every reading advances it by
// one millisecond, so span durations count clock reads rather than host
// scheduling and the trace-shape assertions below can be exact about time.
type tickClock struct{ t time.Time }

func (c *tickClock) Now() time.Time {
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

// TestRunFig3Trace pins the -trace contract on fig3: exactly one root
// "experiment/fig3" span, at least one "replicates" batch span per
// scheduler batch, correct parent nesting, and every child span's
// [start, start+dur] interval inside the root's — i.e. the experiment span
// accounts for the full (virtual) wall time of its batches. workers=1 keeps
// the scheduler on the serial path so the single-goroutine tickClock is
// never read concurrently.
func TestRunFig3Trace(t *testing.T) {
	var traceBuf bytes.Buffer
	tr := obs.NewTracer(&traceBuf, &tickClock{t: time.Unix(0, 0).UTC()})
	if err := run(io.Discard, "fig3", 1, true, 1, tr); err != nil {
		t.Fatal(err)
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("tracer error: %v", err)
	}
	recs, err := obs.ReadTrace(&traceBuf)
	if err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}

	var root obs.Record
	roots := 0
	batches := 0
	for _, r := range recs {
		switch {
		case r.Name == "experiment/fig3":
			root = r
			roots++
		case r.Name == "replicates":
			batches++
		default:
			t.Errorf("unexpected record %q in trace", r.Name)
		}
	}
	if roots != 1 {
		t.Fatalf("got %d experiment/fig3 spans, want exactly 1", roots)
	}
	if root.Parent != 0 {
		t.Errorf("experiment span should be a root, has parent %d", root.Parent)
	}
	if batches == 0 {
		t.Fatal("no replicates batch spans recorded")
	}
	for _, r := range recs {
		if r.Name != "replicates" {
			continue
		}
		if r.Parent != root.ID {
			t.Errorf("replicates span %d has parent %d, want experiment span %d", r.ID, r.Parent, root.ID)
		}
		if r.StartUS < root.StartUS || r.StartUS+r.DurUS > root.StartUS+root.DurUS {
			t.Errorf("replicates span [%d, %d] escapes experiment span [%d, %d]",
				r.StartUS, r.StartUS+r.DurUS, root.StartUS, root.StartUS+root.DurUS)
		}
		if r.Attrs["n"] == nil || r.Attrs["workers"] == nil {
			t.Errorf("replicates span %d missing n/workers attrs: %v", r.ID, r.Attrs)
		}
	}
	// The tickClock advances 1ms per reading and every reading happens
	// between the root's start and end, so the root span's duration must
	// equal (total clock reads - 1) ms: the experiment accounts for all
	// traced virtual time with nothing outside it.
	reads := int64(2 * len(recs)) // each span reads the clock at Start and End
	if want := (reads - 1) * 1000; root.DurUS != want {
		t.Errorf("experiment span duration %dus, want %dus (= all %d clock reads)", root.DurUS, want, reads)
	}
}

// TestRunTraceDisabled keeps the nil-tracer path span-free: run with tr=nil
// must not write anywhere (it would panic on a nil buffer if it tried).
func TestRunTraceDisabled(t *testing.T) {
	if err := run(io.Discard, "fig2", 1, true, 1, nil); err != nil {
		t.Fatal(err)
	}
}
