package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDispatchesEveryExperiment(t *testing.T) {
	// Smoke-run the cheap experiments at full size and the expensive ones
	// in quick mode, checking each prints its identifying header.
	cases := []struct {
		name   string
		quick  bool
		header string
	}{
		{"fig1", false, "Fig 1"},
		{"fig2", false, "Fig 2"},
		{"fig4", false, "Fig 4"},
		{"table2", true, "Table 2"},
		{"table3", true, "Table 3"},
		{"fig6", true, "Fig 6"},
		{"eq1", true, "Eq. 1"},
		{"loop", true, "Continuous"},
		{"drift", true, "A2 violation"},
		{"rollout", true, "Staged rollout"},
		{"zipf", true, "Workload contrast"},
		{"p99", true, "Tail latency"},
		{"longterm", true, "Long-term effects"},
		{"ablate", true, "Ablation"},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := run(&buf, c.name, 1, c.quick, 0); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !strings.Contains(buf.String(), c.header) {
			t.Errorf("%s output missing %q:\n%s", c.name, c.header, buf.String())
		}
	}
}

func TestRunFig3Quick(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig3", 1, true, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig 3") {
		t.Errorf("missing header:\n%s", buf.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope", 1, false, 1); err == nil {
		t.Error("unknown experiment should fail")
	}
}
