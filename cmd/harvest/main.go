// Command harvest regenerates the tables and figures of "Harvesting
// Randomness to Optimize Distributed Systems" (HotNets 2017) from this
// repository's substrates, printing the same rows/series the paper reports.
//
// Usage:
//
//	harvest [-seed N] [-quick] [-workers N] [-trace PATH] <experiment>
//
// where <experiment> is one of:
//
//	fig1     data needed to evaluate K policies: CB vs A/B testing
//	fig2     theoretical accuracy (Eq. 1) vs N for several ε
//	fig3     ips estimator error on machine health (1000 resimulations)
//	fig4     CB training convergence vs the full-feedback baseline
//	table2   load-balancing policies: off-policy vs online latency
//	table3   cache-eviction policies: hitrates on the big/small workload
//	fig6     hierarchical Front Door vs flat action space
//	eq1      empirical verification of the Eq. 1 simultaneous bound
//	loop     the §3 continuous deploy-harvest-retrain loop
//	drift    the §5 A2-violation study (frozen vs incremental learner)
//	rollout  staged rollout of send-to-1: exposure reveals the A1 bias
//	zipf     workload contrast: Table 3 flips on uniform-size Zipf keys
//	p99      tail latency: offline weighted-quantile p99 vs deployed p99
//	longterm §5 capstone: chaos coverage + trajectory estimators recover
//	         the sustained send-to-1 latency per-request ips cannot see
//	ablate   the design-choice ablations (estimators, propensity
//	         inference, exploration coverage, eviction sample width)
//	all      everything above in order
//
// -workers bounds the deterministic replicate scheduler: 1 forces the
// legacy serial path, 0 (the default) uses runtime.NumCPU(). Output is
// byte-identical for every worker count at the same seed.
//
// -trace PATH writes a JSONL span trace: one "experiment/<name>" span per
// experiment run, with one "replicates" child span per scheduler batch, so
// slow replicate batches are attributable. Tracing never changes results.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/parallel"
)

func main() {
	seed := flag.Int64("seed", 1, "root RNG seed (experiments are deterministic given a seed)")
	quick := flag.Bool("quick", false, "reduce sample sizes for a fast smoke run")
	workers := flag.Int("workers", 0, "replicate scheduler concurrency (0 = NumCPU, 1 = serial; output identical for any value)")
	tracePath := flag.String("trace", "", "write a JSONL span trace to this file (empty disables)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: harvest [-seed N] [-quick] [-workers N] [-trace PATH] fig1|fig2|fig3|fig4|table2|table3|fig6|eq1|loop|drift|rollout|zipf|p99|longterm|ablate|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	var tracer *obs.Tracer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "harvest:", err)
			os.Exit(1)
		}
		defer f.Close()
		tracer = obs.NewTracer(f, nil)
	}
	if err := run(os.Stdout, flag.Arg(0), *seed, *quick, *workers, tracer); err != nil {
		fmt.Fprintln(os.Stderr, "harvest:", err)
		os.Exit(1)
	}
	if err := tracer.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "harvest: trace:", err)
		os.Exit(1)
	}
}

// run dispatches one experiment (or all) to w, tracing each experiment as a
// root span when tr is non-nil (nil disables tracing entirely).
func run(w io.Writer, name string, seed int64, quick bool, workers int, tr *obs.Tracer) error {
	if name == "all" {
		for _, sub := range []string{"fig1", "fig2", "fig3", "fig4", "table2", "table3", "fig6", "eq1", "loop", "drift", "rollout", "zipf", "p99", "longterm", "ablate"} {
			if err := run(w, sub, seed, quick, workers, tr); err != nil {
				return fmt.Errorf("%s: %w", sub, err)
			}
		}
		return nil
	}

	sp := tr.Start("experiment/"+name, nil, map[string]any{
		"seed": seed, "quick": quick, "workers": workers,
	})
	defer sp.End()
	restore := parallel.SetTrace(tr, sp)
	defer restore()

	type writerTo interface {
		WriteTo(io.Writer) (int64, error)
	}
	exec := func(res writerTo, err error) error {
		if err != nil {
			return err
		}
		if _, err := res.WriteTo(w); err != nil {
			return err
		}
		_, err = fmt.Fprintln(w)
		return err
	}
	switch name {
	case "fig1":
		p := experiments.DefaultFig1Params()
		p.Workers = workers
		return exec(experiments.Fig1(p))
	case "fig2":
		p := experiments.DefaultFig2Params()
		p.Workers = workers
		return exec(experiments.Fig2(p))
	case "fig3":
		p := experiments.DefaultFig3Params()
		p.Seed = seed
		p.Workers = workers
		if quick {
			p.Resims = 100
			p.TestNs = []int{250, 1000, 3500}
		}
		return exec(experiments.Fig3(p))
	case "fig4":
		p := experiments.DefaultFig4Params()
		p.Seed = seed
		p.Workers = workers
		return exec(experiments.Fig4(p))
	case "table2":
		p := experiments.DefaultTable2Params()
		p.Seed = seed
		p.Workers = workers
		if quick {
			p.Config.NumRequests = 10000
			p.Config.Warmup = 1000
		}
		return exec(experiments.Table2(p))
	case "table3":
		p := experiments.DefaultTable3Params()
		p.Seed = seed
		p.Workers = workers
		if quick {
			p.Requests = 20000
		}
		return exec(experiments.Table3(p))
	case "fig6":
		p := experiments.DefaultFig6Params()
		p.Seed = seed
		p.Workers = workers
		if quick {
			p.Config.NumRequests = 8000
			p.Config.Warmup = 1000
		}
		return exec(experiments.Fig6(p))
	case "eq1":
		p := experiments.DefaultEq1Params()
		p.Seed = seed
		p.Workers = workers
		if quick {
			p.Ns = []int{2000, 8000}
		}
		return exec(experiments.Eq1(p))
	case "loop":
		p := experiments.DefaultContinuousParams()
		p.Seed = seed
		if quick {
			p.Rounds = 3
			p.Config.NumRequests = 8000
			p.Config.Warmup = 800
		}
		return exec(experiments.Continuous(p))
	case "drift":
		p := experiments.DefaultDriftParams()
		p.Seed = seed
		if quick {
			p.PhaseN = 3000
		}
		return exec(experiments.Drift(p))
	case "rollout":
		p := experiments.DefaultRolloutParams()
		p.Seed = seed
		p.Workers = workers
		if quick {
			p.Config.NumRequests = 8000
			p.Config.Warmup = 800
		}
		return exec(experiments.Rollout(p))
	case "zipf":
		p := experiments.DefaultZipfContrastParams()
		p.Seed = seed
		p.Workers = workers
		if quick {
			p.Requests = 20000
		}
		return exec(experiments.ZipfContrast(p))
	case "p99":
		p := experiments.DefaultP99Params()
		p.Seed = seed
		p.Workers = workers
		if quick {
			p.Config.NumRequests = 10000
			p.Config.Warmup = 1000
		}
		return exec(experiments.P99(p))
	case "longterm":
		p := experiments.DefaultLongTermParams()
		p.Seed = seed
		p.Workers = workers
		if quick {
			p.N = 15000
		}
		return exec(experiments.LongTerm(p))
	case "ablate":
		n := 20000
		requests := 60000
		if quick {
			n, requests = 5000, 20000
		}
		if err := exec(experiments.AblationEstimators(seed, n, workers)); err != nil {
			return err
		}
		if err := exec(experiments.AblationPropensity(seed, n, workers)); err != nil {
			return err
		}
		if err := exec(experiments.AblationExploration(seed, n, workers)); err != nil {
			return err
		}
		return exec(experiments.AblationSampleWidth(seed, requests, []int{2, 3, 5, 10, 20}, workers))
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}
