package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/harvester/binrec"
	"repro/internal/lbsim"
	"repro/internal/stats"
)

// genNginxLog mirrors the harvestd test fixture: n randomized-routing
// requests over two upstreams.
func genNginxLog(n int, seed int64) string {
	r := stats.NewRand(seed)
	var b strings.Builder
	for i := 0; i < n; i++ {
		conns := []int{r.Intn(8), r.Intn(8)}
		up := r.Intn(2)
		rt := 0.002 + 0.0005*float64(conns[up]) + 0.001*r.Float64()
		fmt.Fprintf(&b,
			"127.0.0.1:%d - - [06/Jul/2026:10:30:00 +0000] \"GET /r/%d HTTP/1.1\" 200 42 \"-\" \"t\" rt=%.6f upstream=%d conns=%d|%d prop=0.500000\n",
			1000+i, i, rt, up, conns[0], conns[1])
	}
	return b.String()
}

func testDataset(n int) core.Dataset {
	r := stats.NewRand(3)
	ds := make(core.Dataset, n)
	for i := range ds {
		conns := []int{r.Intn(8), r.Intn(8)}
		ds[i] = core.Datapoint{
			Context:    lbsim.BuildContext(conns, 0, 1),
			Action:     core.Action(r.Intn(2)),
			Reward:     0.002 + 0.003*r.Float64(),
			Propensity: 0.5,
			Seq:        int64(i),
			Tag:        "conv",
		}
	}
	return ds
}

// TestNginxToBin converts an access log to binary and checks the decoded
// records against the harvester's own batch conversion.
func TestNginxToBin(t *testing.T) {
	logText := genNginxLog(50, 11)
	var out bytes.Buffer
	if err := run([]string{"-from", "nginx", "-to", "bin"}, strings.NewReader(logText), &out); err != nil {
		t.Fatal(err)
	}
	dec := binrec.NewDecoder(bytes.NewReader(out.Bytes()))
	var b binrec.Batch
	var got core.Dataset
	for {
		err := dec.Next(&b)
		if err != nil {
			break
		}
		got = append(got, b.Points...)
	}
	if len(got) != 50 {
		t.Fatalf("decoded %d records, want 50", len(got))
	}
	for i := range got {
		if got[i].Seq != int64(i) {
			t.Fatalf("record %d has seq %d", i, got[i].Seq)
		}
		if got[i].Propensity != 0.5 {
			t.Fatalf("record %d propensity %v", i, got[i].Propensity)
		}
	}
}

// TestJSONLBinRoundTrip: jsonl → bin → jsonl must reproduce the dataset
// exactly (the codec is lossless for every wire field).
func TestJSONLBinRoundTrip(t *testing.T) {
	ds := testDataset(64)
	var jsonl bytes.Buffer
	w := core.NewJSONLWriter(&jsonl)
	for i := range ds {
		if err := w.Write(&ds[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	binPath := filepath.Join(t.TempDir(), "records.bin")
	if err := run([]string{"-to", "bin", "-segment", "512", "-o", binPath},
		bytes.NewReader(jsonl.Bytes()), new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	binData, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	var back bytes.Buffer
	if err := run([]string{"-from", "bin", "-to", "jsonl"}, bytes.NewReader(binData), &back); err != nil {
		t.Fatal(err)
	}
	var got core.Dataset
	if err := core.ReadJSONLFunc(&back, func(d core.Datapoint) error {
		got = append(got, d)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, got) {
		t.Fatalf("round trip changed the dataset:\n want %+v\n got  %+v", ds[:2], got[:2])
	}
}

// TestAppendFlag: header-less output concatenated after a headered file
// decodes as one stream.
func TestAppendFlag(t *testing.T) {
	ds := testDataset(20)
	var jsonl1, jsonl2 bytes.Buffer
	w1, w2 := core.NewJSONLWriter(&jsonl1), core.NewJSONLWriter(&jsonl2)
	for i := range ds[:10] {
		if err := w1.Write(&ds[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 10; i < 20; i++ {
		if err := w2.Write(&ds[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w1.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}
	var head, tail bytes.Buffer
	if err := run([]string{"-to", "bin"}, bytes.NewReader(jsonl1.Bytes()), &head); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-to", "bin", "-append"}, bytes.NewReader(jsonl2.Bytes()), &tail); err != nil {
		t.Fatal(err)
	}
	joined := append(head.Bytes(), tail.Bytes()...)
	dec := binrec.NewDecoder(bytes.NewReader(joined))
	var b binrec.Batch
	total := 0
	for dec.Next(&b) == nil {
		total += len(b.Points)
	}
	if total != 20 {
		t.Fatalf("joined stream decoded %d records, want 20", total)
	}
}

// TestStrictConversion: a malformed line aborts with its line number — no
// tolerant mode for batch conversions.
func TestStrictConversion(t *testing.T) {
	logText := genNginxLog(3, 12) + "garbage\n"
	err := run([]string{"-from", "nginx"}, strings.NewReader(logText), new(bytes.Buffer))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("err = %v, want line-4 failure", err)
	}
}

func TestBadFormats(t *testing.T) {
	if err := run([]string{"-from", "xml"}, strings.NewReader(""), new(bytes.Buffer)); err == nil {
		t.Error("unknown input format accepted")
	}
	if err := run([]string{"-to", "xml"}, strings.NewReader(""), new(bytes.Buffer)); err == nil {
		t.Error("unknown output format accepted")
	}
}
