// Command recconv converts harvest-record files between the text formats
// (nginx-style access logs, core JSONL datasets) and the binrec binary
// format harvestd's bulk ingest path reads. The usual direction is
// text → binary — packing rotated logs for fast replay into a daemon
// (harvestd -bin, or POST /ingest?format=bin) — with binary → JSONL
// available for inspecting a packed file with text tools.
//
// Usage:
//
//	recconv [-from nginx|jsonl|bin] [-to bin|jsonl] [-types N]
//	        [-segment N] [-append] [-o PATH] [INPUT]
//
// INPUT defaults to stdin and -o to stdout. -from defaults to jsonl and
// -to to bin. -types is the typed-routing context width for nginx input.
// -append writes binary output without the stream header, producing bytes
// suitable for appending to an existing binrec file; -segment overrides
// the segment-seal threshold in bytes.
//
// Conversion is strict: a malformed input line or a non-harvestable access
// entry (non-2xx, missing propensity) aborts with the offending line
// number. Silent loss in a batch conversion would bias every estimate
// computed downstream, so there is no tolerant mode.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/harvester"
	"repro/internal/harvester/binrec"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "recconv:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("recconv", flag.ContinueOnError)
	from := fs.String("from", "jsonl", "input format: nginx | jsonl | bin")
	to := fs.String("to", "bin", "output format: bin | jsonl")
	types := fs.Int("types", 1, "request types in nginx input (typed routing contexts)")
	segment := fs.Int("segment", 0, "binary segment-seal threshold in bytes (0 = default)")
	appendMode := fs.Bool("append", false, "omit the binary stream header (output appends to an existing file)")
	out := fs.String("o", "", "output path (empty = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		return fmt.Errorf("at most one input file, got %v", fs.Args())
	}

	in := stdin
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }() // read-only; close error unactionable
		in = f
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		w = f
		defer func() {
			// Best effort on the error path; the success path closes below.
			_ = f.Close()
		}()
	}

	emit, finish, err := newEmitter(w, *to, *segment, *appendMode)
	if err != nil {
		return err
	}
	n, err := convert(in, *from, *types, emit)
	if err != nil {
		return err
	}
	if err := finish(); err != nil {
		return err
	}
	if f, ok := w.(*os.File); ok && *out != "" {
		if err := f.Close(); err != nil {
			return fmt.Errorf("%s: %w", *out, err)
		}
	}
	fmt.Fprintf(os.Stderr, "recconv: %d records %s -> %s\n", n, *from, *to)
	return nil
}

// newEmitter builds the output side: a per-datapoint write function plus a
// finish function flushing any buffered tail.
func newEmitter(w io.Writer, to string, segment int, appendMode bool) (func(*core.Datapoint) error, func() error, error) {
	switch to {
	case "bin":
		var enc *binrec.Encoder
		if appendMode {
			enc = binrec.NewAppendEncoder(w)
		} else {
			var err error
			if enc, err = binrec.NewEncoder(w); err != nil {
				return nil, nil, err
			}
		}
		if segment > 0 {
			enc.SegmentBytes = segment
		}
		return enc.Write, enc.Flush, nil
	case "jsonl":
		jw := core.NewJSONLWriter(w)
		return jw.Write, jw.Flush, nil
	default:
		return nil, nil, fmt.Errorf("unknown output format %q (want bin | jsonl)", to)
	}
}

// convert streams the input format into emit, returning the record count.
func convert(in io.Reader, from string, types int, emit func(*core.Datapoint) error) (int64, error) {
	var n int64
	switch from {
	case "nginx":
		sc := bufio.NewScanner(in)
		sc.Buffer(make([]byte, 0, core.ScanBufferSize), core.MaxRecordBytes)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			e, err := harvester.ParseNginxLine(line)
			if err != nil {
				return n, fmt.Errorf("line %d: %w", lineNo, err)
			}
			d, ok, err := harvester.EntryToTypedDatapoint(e, types)
			if err != nil {
				return n, fmt.Errorf("line %d: %w", lineNo, err)
			}
			if !ok {
				return n, fmt.Errorf("line %d: entry carries no harvestable datapoint", lineNo)
			}
			d.Seq = n
			if err := emit(&d); err != nil {
				return n, err
			}
			n++
		}
		return n, sc.Err()
	case "jsonl":
		err := core.ReadJSONLFunc(in, func(d core.Datapoint) error {
			n++
			return emit(&d)
		})
		return n, err
	case "bin":
		dec := binrec.NewDecoder(in)
		var b binrec.Batch
		for {
			err := dec.Next(&b)
			if err == io.EOF {
				return n, nil
			}
			if err != nil {
				return n, err
			}
			for i := range b.Points {
				if err := emit(&b.Points[i]); err != nil {
					return n, err
				}
				n++
			}
		}
	default:
		return 0, fmt.Errorf("unknown input format %q (want nginx | jsonl | bin)", from)
	}
}
