// Command lbd runs the live HTTP load-balancing prototype: a set of
// backends whose service time grows with in-flight requests, fronted by a
// reverse proxy with a pluggable routing policy writing an Nginx-style
// access log — the harvestable system of the paper's Nginx scenario.
//
// Usage:
//
//	lbd [-backends N] [-policy random|leastloaded|sendto0] [-log PATH]
//	    [-requests N] [-rate R] [-metrics-addr HOST:PORT]
//	    [-debug-addr HOST:PORT]
//
// With -requests > 0 the command generates that much load itself, prints
// the measured latency, and exits; with -requests 0 it serves until
// interrupted, printing the proxy address for external clients.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/lbsim"
	"repro/internal/netlb"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/stats"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "lbd:", err)
		os.Exit(1)
	}
}

// run wires flags → backends → proxy, then either self-generates load or
// serves until ctx is cancelled. When ready is non-nil the proxy base URL
// is sent on it after startup — the hook tests use to drive the cluster
// in-process.
func run(ctx context.Context, args []string, stdout io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("lbd", flag.ContinueOnError)
	numBackends := fs.Int("backends", 2, "number of backend servers")
	polName := fs.String("policy", "random", "routing policy: random|leastloaded|sendto0")
	logPath := fs.String("log", "access.log", "access log path (empty disables)")
	requests := fs.Int("requests", 2000, "requests to self-generate (0 = serve until interrupted)")
	rate := fs.Float64("rate", 200, "self-generated request rate per second")
	base := fs.Duration("base", 2*time.Millisecond, "backend 0 base service time (each later backend +50%)")
	slope := fs.Duration("slope", 500*time.Microsecond, "added service time per in-flight request")
	seed := fs.Int64("seed", 1, "RNG seed")
	metricsAddr := fs.String("metrics-addr", "", "Prometheus /metrics listen address (empty disables)")
	debugAddr := fs.String("debug-addr", "", "pprof/expvar listen address (empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	if *numBackends < 2 {
		return fmt.Errorf("need at least 2 backends")
	}
	backends := make([]*netlb.Backend, *numBackends)
	addrs := make([]string, *numBackends)
	for i := range backends {
		b := time.Duration(float64(*base) * (1 + 0.5*float64(i)))
		be, err := netlb.StartBackend(i, b, *slope)
		if err != nil {
			return err
		}
		defer be.Close()
		backends[i] = be
		addrs[i] = be.Addr()
		fmt.Fprintf(stdout, "backend %d at %s (base %v)\n", i, be.Addr(), b)
	}

	var pol core.Policy
	r := stats.NewRand(*seed)
	switch *polName {
	case "random":
		pol = policy.UniformRandom{R: stats.Split(r)}
	case "leastloaded":
		pol = lbsim.LeastLoaded{}
	case "sendto0":
		pol = policy.Constant{A: 0}
	default:
		return fmt.Errorf("unknown policy %q", *polName)
	}

	var logW *os.File
	if *logPath != "" {
		f, err := os.Create(*logPath)
		if err != nil {
			return err
		}
		defer f.Close()
		logW = f
	}
	proxy, err := netlb.NewProxy(addrs, pol, stats.Split(r), logW)
	if err != nil {
		return err
	}

	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		proxy.SetMetrics(reg)
		obs.RegisterGoRuntime(reg)
		ms, err := obs.ServeMux(*metricsAddr, obs.MetricsMux(reg))
		if err != nil {
			return err
		}
		defer func() { _ = ms.Close() }()
		fmt.Fprintf(stdout, "metrics on http://%s/metrics\n", ms.Addr())
	}
	debug, err := obs.StartDebug(*debugAddr)
	if err != nil {
		return err
	}
	if debug != nil {
		defer func() { _ = debug.Close() }()
		fmt.Fprintf(stdout, "debug (pprof/expvar) on http://%s/debug/pprof/\n", debug.Addr())
	}

	addr, err := proxy.Start()
	if err != nil {
		return err
	}
	defer proxy.Close()
	fmt.Fprintf(stdout, "proxy (%s policy) at http://%s\n", *polName, addr)
	if ready != nil {
		ready <- proxy.URL()
	}

	if *requests <= 0 {
		<-ctx.Done()
		return nil
	}
	res, err := netlb.GenerateLoad(proxy.URL(), *requests, *rate, stats.Split(r))
	if err != nil {
		return err
	}
	p99, err := res.P99()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "completed %d requests (%d errors): mean %v, p99 %v\n",
		len(res.Latencies), res.Errors, res.Mean(), p99)
	if *logPath != "" {
		fmt.Fprintf(stdout, "access log written to %s — harvest it with the harvester package\n", *logPath)
	}
	return nil
}
