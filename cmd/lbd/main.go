// Command lbd runs the live HTTP load-balancing prototype: a set of
// backends whose service time grows with in-flight requests, fronted by a
// reverse proxy with a pluggable routing policy writing an Nginx-style
// access log — the harvestable system of the paper's Nginx scenario.
//
// Usage:
//
//	lbd [-backends N] [-policy random|leastloaded|sendto0] [-log PATH]
//	    [-requests N] [-rate R] [-metrics-addr HOST:PORT]
//	    [-canary random|leastloaded|sendto0] [-canary-share F]
//	    [-admin-addr HOST:PORT] [-debug-addr HOST:PORT]
//
// With -requests > 0 the command generates that much load itself, prints
// the measured latency, and exits; with -requests 0 it serves until
// interrupted, printing the proxy address for external clients.
//
// With -canary set, routing goes through a policy.DynamicBlend: the canary
// policy receives -canary-share of decisions (default 0 = shadow) and the
// -policy incumbent the rest, with the exact mixture distribution logged so
// the canary stays fully harvestable at any share. -admin-addr exposes the
// share for a rollout controller: GET /share reports it, POST /share with
// {"share": x} retunes it live.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/lbsim"
	"repro/internal/netlb"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/stats"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "lbd:", err)
		os.Exit(1)
	}
}

// run wires flags → backends → proxy, then either self-generates load or
// serves until ctx is cancelled. When ready is non-nil the proxy base URL
// is sent on it after startup — the hook tests use to drive the cluster
// in-process.
func run(ctx context.Context, args []string, stdout io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("lbd", flag.ContinueOnError)
	numBackends := fs.Int("backends", 2, "number of backend servers")
	polName := fs.String("policy", "random", "routing policy: random|leastloaded|sendto0")
	logPath := fs.String("log", "access.log", "access log path (empty disables)")
	requests := fs.Int("requests", 2000, "requests to self-generate (0 = serve until interrupted)")
	rate := fs.Float64("rate", 200, "self-generated request rate per second")
	base := fs.Duration("base", 2*time.Millisecond, "backend 0 base service time (each later backend +50%)")
	slope := fs.Duration("slope", 500*time.Microsecond, "added service time per in-flight request")
	seed := fs.Int64("seed", 1, "RNG seed")
	metricsAddr := fs.String("metrics-addr", "", "Prometheus /metrics listen address (empty disables)")
	canaryName := fs.String("canary", "", "canary policy blended over -policy (empty disables)")
	canaryShare := fs.Float64("canary-share", 0, "initial canary traffic share in [0,1]")
	adminAddr := fs.String("admin-addr", "", "share admin API listen address (empty disables)")
	debugAddr := fs.String("debug-addr", "", "pprof/expvar listen address (empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	if *numBackends < 2 {
		return fmt.Errorf("need at least 2 backends")
	}
	// Validated here, before any backend or log file is created, so a bad
	// invocation leaves nothing behind.
	if *adminAddr != "" && *canaryName == "" {
		return fmt.Errorf("-admin-addr needs -canary (there is no share to administer)")
	}
	backends := make([]*netlb.Backend, *numBackends)
	addrs := make([]string, *numBackends)
	for i := range backends {
		b := time.Duration(float64(*base) * (1 + 0.5*float64(i)))
		be, err := netlb.StartBackend(i, b, *slope)
		if err != nil {
			return err
		}
		defer be.Close()
		backends[i] = be
		addrs[i] = be.Addr()
		fmt.Fprintf(stdout, "backend %d at %s (base %v)\n", i, be.Addr(), b)
	}

	r := stats.NewRand(*seed)
	pol, err := policyByName(*polName, r)
	if err != nil {
		return err
	}
	var blend *policy.DynamicBlend
	if *canaryName != "" {
		canary, err := policyByName(*canaryName, r)
		if err != nil {
			return fmt.Errorf("canary: %w", err)
		}
		blend, err = policy.NewDynamicBlend(canary, pol, *canaryShare, stats.Split(r))
		if err != nil {
			return err
		}
		pol = blend
	}

	var logW *os.File
	if *logPath != "" {
		f, err := os.Create(*logPath)
		if err != nil {
			return err
		}
		defer f.Close()
		logW = f
	}
	proxy, err := netlb.NewProxy(addrs, pol, stats.Split(r), logW)
	if err != nil {
		return err
	}

	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		proxy.SetMetrics(reg)
		obs.RegisterGoRuntime(reg)
		ms, err := obs.ServeMux(*metricsAddr, obs.MetricsMux(reg))
		if err != nil {
			return err
		}
		defer func() { _ = ms.Close() }()
		fmt.Fprintf(stdout, "metrics on http://%s/metrics\n", ms.Addr())
	}
	if *adminAddr != "" {
		as, err := obs.ServeMux(*adminAddr, adminMux(blend))
		if err != nil {
			return err
		}
		defer func() { _ = as.Close() }()
		fmt.Fprintf(stdout, "share admin on http://%s/share\n", as.Addr())
	}
	debug, err := obs.StartDebug(*debugAddr)
	if err != nil {
		return err
	}
	if debug != nil {
		defer func() { _ = debug.Close() }()
		fmt.Fprintf(stdout, "debug (pprof/expvar) on http://%s/debug/pprof/\n", debug.Addr())
	}

	addr, err := proxy.Start()
	if err != nil {
		return err
	}
	defer proxy.Close()
	if blend != nil {
		fmt.Fprintf(stdout, "proxy (%s + %s canary at share %g) at http://%s\n",
			*polName, *canaryName, blend.Share(), addr)
	} else {
		fmt.Fprintf(stdout, "proxy (%s policy) at http://%s\n", *polName, addr)
	}
	if ready != nil {
		ready <- proxy.URL()
	}

	if *requests <= 0 {
		<-ctx.Done()
		return nil
	}
	res, err := netlb.GenerateLoad(proxy.URL(), *requests, *rate, stats.Split(r))
	if err != nil {
		return err
	}
	p99, err := res.P99()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "completed %d requests (%d errors): mean %v, p99 %v\n",
		len(res.Latencies), res.Errors, res.Mean(), p99)
	if *logPath != "" {
		fmt.Fprintf(stdout, "access log written to %s — harvest it with the harvester package\n", *logPath)
	}
	return nil
}

// policyByName resolves a routing policy flag value.
func policyByName(name string, r *rand.Rand) (core.Policy, error) {
	switch name {
	case "random":
		return policy.UniformRandom{R: stats.Split(r)}, nil
	case "leastloaded":
		return lbsim.LeastLoaded{}, nil
	case "sendto0":
		return policy.Constant{A: 0}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

// adminMux serves the canary share: GET /share reports it, POST /share
// with {"share": x} retunes the live blend — the one-field contract
// rollout.HTTPActuator speaks.
func adminMux(blend *policy.DynamicBlend) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/share", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
		case http.MethodPost:
			var body struct {
				Share float64 `json:"share"`
			}
			if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&body); err != nil {
				http.Error(w, "bad share body: "+err.Error(), http.StatusBadRequest)
				return
			}
			if err := blend.SetShare(body.Share); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		default:
			http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"share\":%g}\n", blend.Share())
	})
	return mux
}
