// Command lbd runs the live HTTP load-balancing prototype: a set of
// backends whose service time grows with in-flight requests, fronted by a
// reverse proxy with a pluggable routing policy writing an Nginx-style
// access log — the harvestable system of the paper's Nginx scenario.
//
// Usage:
//
//	lbd [-backends N] [-policy random|leastloaded|sendto0] [-log PATH]
//	    [-requests N] [-rate R]
//
// With -requests > 0 the command generates that much load itself, prints
// the measured latency, and exits; with -requests 0 it serves until
// interrupted, printing the proxy address for external clients.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/core"
	"repro/internal/lbsim"
	"repro/internal/netlb"
	"repro/internal/policy"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lbd:", err)
		os.Exit(1)
	}
}

func run() error {
	numBackends := flag.Int("backends", 2, "number of backend servers")
	polName := flag.String("policy", "random", "routing policy: random|leastloaded|sendto0")
	logPath := flag.String("log", "access.log", "access log path (empty disables)")
	requests := flag.Int("requests", 2000, "requests to self-generate (0 = serve until interrupted)")
	rate := flag.Float64("rate", 200, "self-generated request rate per second")
	base := flag.Duration("base", 2*time.Millisecond, "backend 0 base service time (each later backend +50%)")
	slope := flag.Duration("slope", 500*time.Microsecond, "added service time per in-flight request")
	seed := flag.Int64("seed", 1, "RNG seed")
	flag.Parse()

	if *numBackends < 2 {
		return fmt.Errorf("need at least 2 backends")
	}
	backends := make([]*netlb.Backend, *numBackends)
	addrs := make([]string, *numBackends)
	for i := range backends {
		b := time.Duration(float64(*base) * (1 + 0.5*float64(i)))
		be, err := netlb.StartBackend(i, b, *slope)
		if err != nil {
			return err
		}
		defer be.Close()
		backends[i] = be
		addrs[i] = be.Addr()
		fmt.Printf("backend %d at %s (base %v)\n", i, be.Addr(), b)
	}

	var pol core.Policy
	r := stats.NewRand(*seed)
	switch *polName {
	case "random":
		pol = policy.UniformRandom{R: stats.Split(r)}
	case "leastloaded":
		pol = lbsim.LeastLoaded{}
	case "sendto0":
		pol = policy.Constant{A: 0}
	default:
		return fmt.Errorf("unknown policy %q", *polName)
	}

	var logW *os.File
	if *logPath != "" {
		f, err := os.Create(*logPath)
		if err != nil {
			return err
		}
		defer f.Close()
		logW = f
	}
	proxy, err := netlb.NewProxy(addrs, pol, stats.Split(r), logW)
	if err != nil {
		return err
	}
	addr, err := proxy.Start()
	if err != nil {
		return err
	}
	defer proxy.Close()
	fmt.Printf("proxy (%s policy) at http://%s\n", *polName, addr)

	if *requests <= 0 {
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt)
		<-stop
		return nil
	}
	res, err := netlb.GenerateLoad(proxy.URL(), *requests, *rate, stats.Split(r))
	if err != nil {
		return err
	}
	p99, err := res.P99()
	if err != nil {
		return err
	}
	fmt.Printf("completed %d requests (%d errors): mean %v, p99 %v\n",
		len(res.Latencies), res.Errors, res.Mean(), p99)
	if *logPath != "" {
		fmt.Printf("access log written to %s — harvest it with the harvester package\n", *logPath)
	}
	return nil
}
