package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer makes run's stdout writer safe to read while the daemon may
// still be printing from its own goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startRun launches run() in serve mode, returning the proxy base URL, the
// stdout buffer, and the exit-error channel.
func startRun(t *testing.T, ctx context.Context, args []string) (string, *syncBuffer, <-chan error) {
	t.Helper()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	out := &syncBuffer{}
	go func() { errc <- run(ctx, args, out, ready) }()
	select {
	case url := <-ready:
		return url, out, errc
	case err := <-errc:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for startup")
	}
	return "", nil, nil
}

// serveURL extracts the http://host:port base printed for a startup line
// containing marker.
func serveURL(t *testing.T, out *syncBuffer, marker string) string {
	t.Helper()
	for _, line := range strings.Split(out.String(), "\n") {
		if !strings.Contains(line, marker) {
			continue
		}
		if i := strings.Index(line, "http://"); i >= 0 {
			return strings.TrimSpace(line[i:])
		}
	}
	t.Fatalf("no %q line in output:\n%s", marker, out.String())
	return ""
}

// TestRunSelfLoad is the batch-mode lifecycle: generate load, write the
// access log, print the latency summary, exit on its own.
func TestRunSelfLoad(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "access.log")
	var out syncBuffer
	err := run(context.Background(), []string{
		"-backends", "2", "-requests", "40", "-rate", "4000",
		"-base", "1ms", "-slope", "100us", "-log", logPath,
	}, &out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "completed 40 requests") {
		t.Errorf("missing completion line:\n%s", out.String())
	}
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 40 {
		t.Errorf("access log has %d lines, want 40", lines)
	}
}

// TestRunMetricsNoDebug serves until cancelled with -metrics-addr set and
// -debug-addr unset: /metrics works, the metrics listener exposes no debug
// surface, and no debug listener was announced at all.
func TestRunMetricsNoDebug(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	url, out, errc := startRun(t, ctx, []string{
		"-backends", "2", "-requests", "0", "-log", "",
		"-metrics-addr", "127.0.0.1:0",
	})

	for i := 0; i < 5; i++ {
		resp, err := http.Get(url + "/x")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	mURL := serveURL(t, out, "metrics on")
	resp, err := http.Get(mURL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	got := string(body)
	for _, want := range []string{
		"# TYPE netlb_backend_requests_total counter",
		"# TYPE netlb_backend_latency_seconds histogram",
		"go_goroutines",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("metrics missing %q:\n%s", want, got)
		}
	}

	// The debug surface must be absent when -debug-addr is unset: nothing
	// announced it, and the metrics listener serves only /metrics.
	if strings.Contains(out.String(), "debug (pprof/expvar)") {
		t.Errorf("debug listener announced without -debug-addr:\n%s", out.String())
	}
	base := strings.TrimSuffix(mURL, "/metrics")
	for _, p := range []string{"/debug/pprof/", "/debug/vars"} {
		resp, err := http.Get(base + p)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404 (debug handlers must be absent)", p, resp.StatusCode)
		}
	}

	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("run exited: %v", err)
	}
}

// TestRunDebugAddr opts in to the debug surface and checks it serves pprof
// and expvar on its own listener.
func TestRunDebugAddr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	_, out, errc := startRun(t, ctx, []string{
		"-backends", "2", "-requests", "0", "-log", "",
		"-debug-addr", "127.0.0.1:0",
	})

	dURL := serveURL(t, out, "debug (pprof/expvar)")
	base := strings.TrimSuffix(dURL, "/debug/pprof/")
	for _, p := range []string{"/debug/pprof/", "/debug/vars"} {
		resp, err := http.Get(base + p)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", p, resp.StatusCode)
		}
	}

	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("run exited: %v", err)
	}
}

func TestRunBadFlags(t *testing.T) {
	ctx := context.Background()
	for _, args := range [][]string{
		{"-backends", "1"},
		{"-policy", "martian"},
		{"positional"},
		{"-canary", "martian"},
		{"-canary", "leastloaded", "-canary-share", "1.5"},
		{"-admin-addr", "127.0.0.1:0"}, // admin without a canary blend
	} {
		if err := run(ctx, args, io.Discard, nil); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

// TestRunCanaryAdmin serves with a canary blend in shadow and retunes the
// share through the admin endpoint — the remote-actuation contract
// rolloutd's HTTPActuator drives.
func TestRunCanaryAdmin(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	url, out, errc := startRun(t, ctx, []string{
		"-backends", "2", "-requests", "0", "-log", "",
		"-canary", "leastloaded", "-canary-share", "0",
		"-admin-addr", "127.0.0.1:0",
	})

	aURL := serveURL(t, out, "share admin on")
	resp, err := http.Get(aURL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(body)); got != `{"share":0}` {
		t.Errorf("GET /share = %q, want zero share", got)
	}

	resp, err = http.Post(aURL, "application/json", strings.NewReader(`{"share":0.25}`))
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(body)); got != `{"share":0.25}` {
		t.Errorf("POST /share = %q, want 0.25", got)
	}

	// Out-of-range and malformed updates are rejected and do not change
	// the live share.
	for _, bad := range []string{`{"share":1.5}`, `not json`} {
		resp, err := http.Post(aURL, "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s = %d, want 400", bad, resp.StatusCode)
		}
	}
	resp, err = http.Get(aURL)
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(body)); got != `{"share":0.25}` {
		t.Errorf("share after bad posts = %q, want 0.25 unchanged", got)
	}

	// The proxy keeps serving while the share moves.
	for i := 0; i < 5; i++ {
		resp, err := http.Get(url + "/x")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("proxy GET = %d, want 200", resp.StatusCode)
		}
	}

	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("run exited: %v", err)
	}
}
