package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// ctxDeafModule is a throwaway module with one ctxloop finding (fixable)
// and one rawrand finding (not fixable).
func ctxDeafModule(t *testing.T) string {
	t.Helper()
	return writeModule(t, map[string]string{
		"go.mod": goMod,
		"main.go": `package main

import (
	"context"
	"math/rand"
)

func pump(ctx context.Context, out chan int) {
	for {
		out <- rand.Intn(10)
	}
}

func main() {
	pump(context.Background(), make(chan int))
}
`,
	})
}

func TestBinaryList(t *testing.T) {
	bin := buildBinary(t)
	dir := writeModule(t, map[string]string{"go.mod": goMod})
	stdout, _, code := runLint(t, bin, dir, "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d", code)
	}
	for _, name := range []string{"rawrand", "propdiv", "walltime", "lockcopy", "errdrop",
		"proptaint", "detorder", "wirecompat", "ctxloop"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout)
		}
	}
}

func TestBinaryEnableDisable(t *testing.T) {
	bin := buildBinary(t)
	dir := ctxDeafModule(t)

	// Everything on: both findings.
	stdout, _, code := runLint(t, bin, dir, "./...")
	if code != 1 || !strings.Contains(stdout, "[ctxloop]") || !strings.Contains(stdout, "[rawrand]") {
		t.Fatalf("full run: exit=%d\n%s", code, stdout)
	}

	// -enable narrows to the named analyzers.
	stdout, _, code = runLint(t, bin, dir, "-enable", "ctxloop", "./...")
	if code != 1 || strings.Contains(stdout, "[rawrand]") || !strings.Contains(stdout, "[ctxloop]") {
		t.Errorf("-enable ctxloop: exit=%d\n%s", code, stdout)
	}

	// -disable removes only the named ones.
	stdout, _, code = runLint(t, bin, dir, "-disable", "ctxloop", "./...")
	if code != 1 || strings.Contains(stdout, "[ctxloop]") || !strings.Contains(stdout, "[rawrand]") {
		t.Errorf("-disable ctxloop: exit=%d\n%s", code, stdout)
	}

	// Mutually exclusive and unknown-name errors are usage errors.
	if _, stderr, code := runLint(t, bin, dir, "-enable", "ctxloop", "-disable", "rawrand", "./..."); code != 2 || !strings.Contains(stderr, "mutually exclusive") {
		t.Errorf("enable+disable: exit=%d stderr:\n%s", code, stderr)
	}
	if _, stderr, code := runLint(t, bin, dir, "-disable", "nosuch", "./..."); code != 2 || !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("-disable nosuch: exit=%d stderr:\n%s", code, stderr)
	}
}

func TestBinaryJSON(t *testing.T) {
	bin := buildBinary(t)
	dir := ctxDeafModule(t)
	stdout, _, code := runLint(t, bin, dir, "-json", "./...")
	if code != 1 {
		t.Fatalf("-json exit = %d\n%s", code, stdout)
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
		Fixable  bool   `json:"fixable"`
	}
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d JSON findings, want 2:\n%s", len(findings), stdout)
	}
	byAnalyzer := map[string]bool{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer] = f.Fixable
		if f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("incomplete JSON finding: %+v", f)
		}
	}
	if !byAnalyzer["ctxloop"] {
		t.Errorf("ctxloop finding should be fixable: %v", byAnalyzer)
	}
	if fixable, ok := byAnalyzer["rawrand"]; !ok || fixable {
		t.Errorf("rawrand finding should be present and not fixable: %v", byAnalyzer)
	}

	// A clean selection emits an empty JSON array, not nothing.
	stdout, _, code = runLint(t, bin, dir, "-json", "-enable", "errdrop", "./...")
	if code != 0 || strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean -json run: exit=%d output %q", code, stdout)
	}
}

func TestBinaryBaseline(t *testing.T) {
	bin := buildBinary(t)
	dir := ctxDeafModule(t)
	baseline := filepath.Join(dir, "lint-baseline.txt")

	// Write the baseline, then a run against it is clean.
	stdout, stderr, code := runLint(t, bin, dir, "-baseline", baseline, "-write-baseline", "./...")
	if code != 0 {
		t.Fatalf("-write-baseline: exit=%d\n%s%s", code, stdout, stderr)
	}
	stdout, stderr, code = runLint(t, bin, dir, "-baseline", baseline, "./...")
	if code != 0 || strings.TrimSpace(stdout) != "" {
		t.Fatalf("baselined run: exit=%d stdout:\n%s stderr:\n%s", code, stdout, stderr)
	}

	// Fixing one finding leaves its baseline entry stale: warned on
	// stderr, still exit 0.
	main := filepath.Join(dir, "main.go")
	src, err := os.ReadFile(main)
	if err != nil {
		t.Fatal(err)
	}
	fixed := strings.Replace(string(src), "for {\n\t\tout <- rand.Intn(10)\n\t}",
		"for {\n\t\tselect {\n\t\tcase out <- rand.Intn(10):\n\t\tcase <-ctx.Done():\n\t\t\treturn\n\t\t}\n\t}", 1)
	if fixed == string(src) {
		t.Fatal("test replacement did not apply")
	}
	if err := os.WriteFile(main, []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, code = runLint(t, bin, dir, "-baseline", baseline, "./...")
	if code != 0 {
		t.Fatalf("after fix: exit=%d stdout:\n%s", code, stdout)
	}
	if !strings.Contains(stderr, "stale baseline entry") {
		t.Errorf("expected stale-entry warning, stderr:\n%s", stderr)
	}
}

func TestBinaryFix(t *testing.T) {
	bin := buildBinary(t)
	dir := ctxDeafModule(t)

	stdout, stderr, code := runLint(t, bin, dir, "-fix", "./...")
	// The ctxloop finding is fixed; the rawrand finding survives.
	if code != 1 || !strings.Contains(stdout, "applied 1 fixes") || !strings.Contains(stdout, "[rawrand]") {
		t.Fatalf("-fix: exit=%d stdout:\n%s stderr:\n%s", code, stdout, stderr)
	}
	src, err := os.ReadFile(filepath.Join(dir, "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "case <-ctx.Done():") {
		t.Errorf("fix not applied to source:\n%s", src)
	}

	// Second -fix run: nothing left to apply, ctxloop stays quiet.
	stdout, _, code = runLint(t, bin, dir, "-fix", "./...")
	if !strings.Contains(stdout, "applied 0 fixes") || strings.Contains(stdout, "[ctxloop]") {
		t.Errorf("second -fix run: exit=%d stdout:\n%s", code, stdout)
	}
}

func TestBinaryWirelock(t *testing.T) {
	bin := buildBinary(t)
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"main.go": `package main

func main() {}
`,
	})
	stdout, stderr, code := runLint(t, bin, dir, "-wirelock")
	if code != 0 {
		t.Fatalf("-wirelock: exit=%d\n%s%s", code, stdout, stderr)
	}
	data, err := os.ReadFile(filepath.Join(dir, "internal", "lint", "wire.lock"))
	if err != nil {
		t.Fatalf("wire.lock not written: %v", err)
	}
	// No watched packages in a throwaway module: header only.
	if strings.Contains(string(data), "struct ") || strings.Contains(string(data), "const ") {
		t.Errorf("unexpected entries in throwaway lock:\n%s", data)
	}
}
