// Command harvestlint runs the repository's static analyzers (package
// repro/internal/lint) over every package in the enclosing module and
// prints findings as
//
//	file:line:col: [analyzer] message
//
// It exits 0 when the tree is clean, 1 when there are findings, and 2 on
// usage or load errors. Arguments are package patterns relative to the
// current directory: "./..." (the default) lints the whole module,
// "./internal/..." a subtree, and "./internal/ope" a single package.
//
// Findings are suppressed by an annotated comment on the same line or the
// line above:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("harvestlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: harvestlint [-only a,b] [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-9s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(stderr, "harvestlint: unknown analyzer %q\n", name)
			return 2
		}
		analyzers = sel
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "harvestlint: %v\n", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "harvestlint: %v\n", err)
		return 2
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintf(stderr, "harvestlint: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var findings []lint.Finding
	matched := false
	for _, pkg := range pkgs {
		if !matchAny(patterns, cwd, pkg.Dir) {
			continue
		}
		matched = true
		findings = append(findings, lint.RunPackage(pkg, analyzers)...)
	}
	if !matched {
		fmt.Fprintf(stderr, "harvestlint: no packages match %v\n", patterns)
		return 2
	}

	lint.Sort(findings)
	for _, f := range findings {
		f.Pos.Filename = relTo(cwd, f.Pos.Filename)
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// matchAny reports whether the package directory matches any pattern
// interpreted relative to cwd. "dir/..." matches the subtree rooted at
// dir; anything else must name the package directory exactly.
func matchAny(patterns []string, cwd, pkgDir string) bool {
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				return true
			}
		}
		abs := pat
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, pat)
		}
		abs = filepath.Clean(abs)
		if pkgDir == abs {
			return true
		}
		if recursive && strings.HasPrefix(pkgDir, abs+string(filepath.Separator)) {
			return true
		}
	}
	return false
}

// relTo renders path relative to base when that is shorter and stays
// inside base; absolute otherwise.
func relTo(base, path string) string {
	rel, err := filepath.Rel(base, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
