// Command harvestlint runs the repository's static analyzers (package
// repro/internal/lint) over every package in the enclosing module and
// prints findings as
//
//	file:line:col: [analyzer] message
//
// It exits 0 when the tree is clean, 1 when there are findings, and 2 on
// usage or load errors. Arguments are package patterns relative to the
// current directory: "./..." (the default) lints the whole module,
// "./internal/..." a subtree, and "./internal/ope" a single package.
//
// Analyzer selection: -enable=a,b runs only the named analyzers,
// -disable=a,b runs everything but them (-only is a legacy alias of
// -enable). -list enumerates the registry.
//
// Output and gating: -json emits machine-readable diagnostics for CI;
// -baseline FILE absorbs known findings (burn the file down to empty,
// never grow it); -write-baseline regenerates that file from the current
// findings; -fix applies the suggested edits carried by fixable findings
// and gofmts the touched files.
//
// Wire-format locking: -wirelock regenerates internal/lint/wire.lock
// from the watched wire structs, refusing any struct whose field set
// changed while its guarding version constant did not (see the
// wirecompat analyzer).
//
// Findings are suppressed by an annotated comment on the same line or the
// line above:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("harvestlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "legacy alias of -enable")
	enable := fs.String("enable", "", "comma-separated analyzer names to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzer names to skip")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	fixMode := fs.Bool("fix", false, "apply suggested fixes for fixable findings")
	baselinePath := fs.String("baseline", "", "baseline file of known findings that do not fail the build")
	writeBaseline := fs.Bool("write-baseline", false, "write current findings to the -baseline file and exit")
	wirelock := fs.Bool("wirelock", false, "regenerate "+lint.WireLockPath+" from the watched wire structs and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: harvestlint [-enable a,b | -disable a,b] [-json] [-fix] [-baseline FILE [-write-baseline]] [-wirelock] [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" && *enable != "" {
		fmt.Fprintln(stderr, "harvestlint: -only is an alias of -enable; give only one")
		return 2
	}
	if *only != "" {
		*enable = *only
	}
	if *enable != "" && *disable != "" {
		fmt.Fprintln(stderr, "harvestlint: -enable and -disable are mutually exclusive")
		return 2
	}
	if sel, unknown := selectAnalyzers(analyzers, *enable, *disable); len(unknown) > 0 {
		for _, name := range unknown {
			fmt.Fprintf(stderr, "harvestlint: unknown analyzer %q\n", name)
		}
		return 2
	} else {
		analyzers = sel
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "harvestlint: %v\n", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "harvestlint: %v\n", err)
		return 2
	}
	lockPath := filepath.Join(root, filepath.FromSlash(lint.WireLockPath))
	if data, err := os.ReadFile(lockPath); err == nil {
		lock, perr := lint.ParseWireLock(data)
		if perr != nil {
			fmt.Fprintf(stderr, "harvestlint: %v\n", perr)
			return 2
		}
		lint.SetWireLock(lock)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintf(stderr, "harvestlint: %v\n", err)
		return 2
	}
	if *wirelock {
		return regenWireLock(pkgs, lockPath, stdout, stderr)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var findings []lint.Finding
	matched := false
	for _, pkg := range pkgs {
		if !matchAny(patterns, cwd, pkg.Dir) {
			continue
		}
		matched = true
		findings = append(findings, lint.RunPackage(pkg, analyzers)...)
	}
	if !matched {
		fmt.Fprintf(stderr, "harvestlint: no packages match %v\n", patterns)
		return 2
	}
	lint.Sort(findings)

	rel := func(path string) string { return relTo(root, path) }
	if *writeBaseline {
		if *baselinePath == "" {
			fmt.Fprintln(stderr, "harvestlint: -write-baseline requires -baseline FILE")
			return 2
		}
		if err := os.WriteFile(*baselinePath, lint.FormatBaseline(findings, rel), 0o644); err != nil {
			fmt.Fprintf(stderr, "harvestlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "harvestlint: wrote %d baseline entries to %s\n", len(findings), *baselinePath)
		return 0
	}
	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "harvestlint: %v\n", err)
			return 2
		}
		var stale []string
		findings, _, stale = lint.FilterBaseline(findings, lint.ParseBaseline(data), rel)
		for _, k := range stale {
			fmt.Fprintf(stderr, "harvestlint: stale baseline entry (finding fixed — delete the line): %s\n", k)
		}
	}

	if *fixMode {
		applied, err := lint.ApplyFixes(findings)
		if err != nil {
			fmt.Fprintf(stderr, "harvestlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "harvestlint: applied %d fixes\n", applied)
		// Keep only findings the fix pass could not resolve; the caller
		// re-runs to verify the rewritten tree.
		var unfixed []lint.Finding
		for _, f := range findings {
			if len(f.Fixes) == 0 {
				unfixed = append(unfixed, f)
			}
		}
		findings = unfixed
	}

	for i := range findings {
		findings[i].Pos.Filename = relTo(cwd, findings[i].Pos.Filename)
	}
	if *jsonOut {
		if err := writeJSON(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "harvestlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers applies -enable/-disable to the registry, returning the
// selection and any unknown names (sorted) for error reporting.
func selectAnalyzers(all []*lint.Analyzer, enable, disable string) (sel []*lint.Analyzer, unknown []string) {
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	splitNames := func(s string) []string {
		var names []string
		for _, n := range strings.Split(s, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		return names
	}
	switch {
	case enable != "":
		want := map[string]bool{}
		for _, n := range splitNames(enable) {
			if byName[n] == nil {
				unknown = append(unknown, n)
			} else {
				want[n] = true
			}
		}
		for _, a := range all {
			if want[a.Name] {
				sel = append(sel, a)
			}
		}
	case disable != "":
		drop := map[string]bool{}
		for _, n := range splitNames(disable) {
			if byName[n] == nil {
				unknown = append(unknown, n)
			} else {
				drop[n] = true
			}
		}
		for _, a := range all {
			if !drop[a.Name] {
				sel = append(sel, a)
			}
		}
	default:
		sel = all
	}
	sort.Strings(unknown)
	return sel, unknown
}

// jsonFinding is the -json wire shape of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Fixable  bool   `json:"fixable"`
}

func writeJSON(out *os.File, findings []lint.Finding) error {
	js := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		js = append(js, jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
			Fixable:  len(f.Fixes) > 0,
		})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(js)
}

// regenWireLock rebuilds the lockfile from the loaded packages. When an
// existing lock is loaded, any watched struct whose field set changed
// without its guarding version constant moving aborts the regeneration:
// schema changes must ride with a deliberate bump.
func regenWireLock(pkgs []*lint.Package, lockPath string, stdout, stderr *os.File) int {
	next := lint.NewWireLock()
	for _, pkg := range pkgs {
		lint.MergeWireLock(next, lint.WireEntries(pkg))
	}
	if bad := lint.CheckWireBump(lint.CurrentWireLock(), next); len(bad) > 0 {
		for _, key := range bad {
			fmt.Fprintf(stderr, "harvestlint: wire struct %s changed but its version constant did not; bump it before regenerating\n", key)
		}
		return 1
	}
	if err := os.MkdirAll(filepath.Dir(lockPath), 0o755); err != nil {
		fmt.Fprintf(stderr, "harvestlint: %v\n", err)
		return 2
	}
	if err := os.WriteFile(lockPath, lint.FormatWireLock(next), 0o644); err != nil {
		fmt.Fprintf(stderr, "harvestlint: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "harvestlint: wrote %s (%d consts, %d structs)\n",
		lockPath, len(next.Consts), len(next.Structs))
	return 0
}

// matchAny reports whether the package directory matches any pattern
// interpreted relative to cwd. "dir/..." matches the subtree rooted at
// dir; anything else must name the package directory exactly.
func matchAny(patterns []string, cwd, pkgDir string) bool {
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				return true
			}
		}
		abs := pat
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, pat)
		}
		abs = filepath.Clean(abs)
		if pkgDir == abs {
			return true
		}
		if recursive && strings.HasPrefix(pkgDir, abs+string(filepath.Separator)) {
			return true
		}
	}
	return false
}

// relTo renders path relative to base when that is shorter and stays
// inside base; absolute otherwise.
func relTo(base, path string) string {
	rel, err := filepath.Rel(base, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
