package main

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// buildBinary compiles harvestlint once into a temp dir.
func buildBinary(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	bin := filepath.Join(t.TempDir(), "harvestlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building harvestlint: %v\n%s", err, out)
	}
	return bin
}

// writeModule materializes a throwaway module from path→content pairs.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runLint executes the binary in dir and returns stdout, stderr, exit code.
func runLint(t *testing.T, bin, dir string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	var stdout, stderr strings.Builder
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) {
			t.Fatalf("running harvestlint: %v", err)
		}
		code = exitErr.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

const goMod = "module tmpmod\n\ngo 1.22\n"

func TestBinaryFlagsViolations(t *testing.T) {
	bin := buildBinary(t)
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"main.go": `package main

import "math/rand"

func main() {
	_ = rand.Intn(10)
}
`,
		"internal/est/est.go": `package est

import "errors"

func work() error { return errors.New("x") }

func drop() {
	work()
}

func divide(pi, p float64) float64 {
	return pi / p
}
`,
	})

	stdout, stderr, code := runLint(t, bin, dir, "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d findings, want 3:\n%s", len(lines), stdout)
	}
	// file:line:col: [name] message, with relative paths, sorted by file.
	format := regexp.MustCompile(`^[^:]+:\d+:\d+: \[[a-z]+\] .+$`)
	for _, line := range lines {
		if !format.MatchString(line) {
			t.Errorf("malformed finding line %q", line)
		}
	}
	for i, wantRE := range []string{
		`^internal/est/est\.go:8:2: \[errdrop\] result of work contains an error`,
		`^internal/est/est\.go:12:12: \[propdiv\] division by propensity-like expression "p"`,
		`^main\.go:6:11: \[rawrand\] math/rand\.Intn draws from the process-global source`,
	} {
		if !regexp.MustCompile(wantRE).MatchString(lines[i]) {
			t.Errorf("finding %d = %q, want match for %s", i, lines[i], wantRE)
		}
	}
}

func TestBinaryCleanModule(t *testing.T) {
	bin := buildBinary(t)
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"main.go": `package main

import "fmt"

func main() {
	fmt.Println("clean")
}
`,
	})
	stdout, stderr, code := runLint(t, bin, dir, "./...")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean module produced output:\n%s", stdout)
	}
}

func TestBinarySuppressionAndOnly(t *testing.T) {
	bin := buildBinary(t)
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"main.go": `package main

import "math/rand"

func main() {
	//lint:ignore rawrand demo binary suppression
	_ = rand.Intn(10)
	_ = rand.Float64()
}
`,
	})
	stdout, _, code := runLint(t, bin, dir, "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, stdout)
	}
	if strings.Count(stdout, "[rawrand]") != 1 || !strings.Contains(stdout, "Float64") {
		t.Errorf("suppression should leave exactly the Float64 finding:\n%s", stdout)
	}

	// -only with a different analyzer silences rawrand entirely.
	stdout, _, code = runLint(t, bin, dir, "-only", "errdrop", "./...")
	if code != 0 || stdout != "" {
		t.Errorf("-only errdrop: exit=%d output:\n%s", code, stdout)
	}

	// Unknown analyzer names are a usage error.
	_, stderr, code := runLint(t, bin, dir, "-only", "nosuch", "./...")
	if code != 2 || !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("-only nosuch: exit=%d stderr:\n%s", code, stderr)
	}
}
