// Command cached runs the Redis-like cache server: a byte-budgeted cache
// with sampled eviction behind a RESP2 TCP listener. Point any sequential
// RESP client (or this repository's resp.Client) at it.
//
// Usage:
//
//	cached [-addr HOST:PORT] [-maxbytes N] [-samples K]
//	       [-policy random|lru|lfu|freqsize]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/cachesim"
	"repro/internal/resp"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cached:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:6399", "listen address")
	maxBytes := flag.Int64("maxbytes", 1<<20, "cache byte budget")
	samples := flag.Int("samples", 5, "eviction candidates sampled per decision (Redis maxmemory-samples)")
	polName := flag.String("policy", "random", "eviction policy: random|lru|lfu|freqsize")
	seed := flag.Int64("seed", 1, "RNG seed")
	flag.Parse()

	r := stats.NewRand(*seed)
	var ev cachesim.Evictor
	switch *polName {
	case "random":
		ev = cachesim.RandomEvictor{R: stats.Split(r)}
	case "lru":
		ev = cachesim.LRUEvictor{}
	case "lfu":
		ev = cachesim.LFUEvictor{}
	case "freqsize":
		ev = cachesim.FreqSizeEvictor{}
	default:
		return fmt.Errorf("unknown policy %q", *polName)
	}

	var srv *resp.Server
	cache, err := cachesim.New(cachesim.Config{
		MaxBytes:   *maxBytes,
		SampleSize: *samples,
		OnEvict:    func(key string) { srv.OnEvict(key) },
	}, ev, stats.Split(r))
	if err != nil {
		return err
	}
	srv, err = resp.NewServer(cache)
	if err != nil {
		return err
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("cached (%s eviction, %d bytes, %d samples) listening on %s\n",
		*polName, *maxBytes, *samples, bound)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	return nil
}
