// Command cached runs the Redis-like cache server: a byte-budgeted cache
// with sampled eviction behind a RESP2 TCP listener. Point any sequential
// RESP client (or this repository's resp.Client) at it.
//
// Usage:
//
//	cached [-addr HOST:PORT] [-maxbytes N] [-samples K]
//	       [-policy random|lru|lfu|freqsize] [-metrics-addr HOST:PORT]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cachesim"
	"repro/internal/obs"
	"repro/internal/resp"
	"repro/internal/stats"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "cached:", err)
		os.Exit(1)
	}
}

// run wires flags → cache → RESP server and serves until ctx is cancelled.
// When ready is non-nil the bound RESP address is sent on it after startup —
// the hook tests use to drive a full server lifecycle in-process.
func run(ctx context.Context, args []string, stdout io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("cached", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:6399", "listen address")
	maxBytes := fs.Int64("maxbytes", 1<<20, "cache byte budget")
	samples := fs.Int("samples", 5, "eviction candidates sampled per decision (Redis maxmemory-samples)")
	polName := fs.String("policy", "random", "eviction policy: random|lru|lfu|freqsize")
	seed := fs.Int64("seed", 1, "RNG seed")
	metricsAddr := fs.String("metrics-addr", "", "Prometheus /metrics listen address (empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	r := stats.NewRand(*seed)
	var ev cachesim.Evictor
	switch *polName {
	case "random":
		ev = cachesim.RandomEvictor{R: stats.Split(r)}
	case "lru":
		ev = cachesim.LRUEvictor{}
	case "lfu":
		ev = cachesim.LFUEvictor{}
	case "freqsize":
		ev = cachesim.FreqSizeEvictor{}
	default:
		return fmt.Errorf("unknown policy %q", *polName)
	}

	var srv *resp.Server
	cache, err := cachesim.New(cachesim.Config{
		MaxBytes:   *maxBytes,
		SampleSize: *samples,
		OnEvict:    func(key string) { srv.OnEvict(key) },
	}, ev, stats.Split(r))
	if err != nil {
		return err
	}
	srv, err = resp.NewServer(cache)
	if err != nil {
		return err
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	defer srv.Close()

	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		srv.RegisterMetrics(reg)
		obs.RegisterGoRuntime(reg)
		mux := obs.MetricsMux(reg)
		ms, err := obs.ServeMux(*metricsAddr, mux)
		if err != nil {
			return err
		}
		defer func() { _ = ms.Close() }()
		fmt.Fprintf(stdout, "cached: metrics on http://%s/metrics\n", ms.Addr())
	}

	fmt.Fprintf(stdout, "cached (%s eviction, %d bytes, %d samples) listening on %s\n",
		*polName, *maxBytes, *samples, bound)
	if ready != nil {
		ready <- bound.String()
	}

	<-ctx.Done()
	return nil
}
