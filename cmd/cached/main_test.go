package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/resp"
)

// syncBuffer makes run's stdout writer safe to read while the daemon may
// still be printing from its own goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startRun launches run() as main would, returning the bound RESP address,
// the stdout buffer, and the exit-error channel.
func startRun(t *testing.T, ctx context.Context, args []string) (string, *syncBuffer, <-chan error) {
	t.Helper()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	out := &syncBuffer{}
	go func() { errc <- run(ctx, args, out, ready) }()
	select {
	case addr := <-ready:
		return addr, out, errc
	case err := <-errc:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for startup")
	}
	return "", nil, nil
}

// metricsURL extracts the metrics base printed at startup.
func metricsURL(t *testing.T, out *syncBuffer) string {
	t.Helper()
	for _, line := range strings.Split(out.String(), "\n") {
		if i := strings.Index(line, "metrics on "); i >= 0 {
			return strings.TrimSpace(line[i+len("metrics on "):])
		}
	}
	t.Fatalf("no metrics line in output:\n%s", out.String())
	return ""
}

// TestRunLifecycleWithMetrics drives a full server lifecycle: serve RESP
// traffic, scrape /metrics on the side listener, shut down on cancel.
func TestRunLifecycleWithMetrics(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	addr, out, errc := startRun(t, ctx, []string{
		"-addr", "127.0.0.1:0", "-policy", "lru", "-metrics-addr", "127.0.0.1:0",
	})

	c, err := resp.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Set("k1", "v1"); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get("k1"); err != nil || !ok || v != "v1" {
		t.Fatalf("GET k1 = %q, %v, %v", v, ok, err)
	}
	if _, _, err := c.Get("absent"); err != nil {
		t.Fatal(err)
	}

	httpResp, err := http.Get(metricsURL(t, out))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	got := string(body)
	for _, want := range []string{
		"# TYPE cached_commands_total counter",
		"cached_keyspace_hits_total 1",
		"cached_keyspace_misses_total 1",
		"cached_items 1",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("metrics missing %q:\n%s", want, got)
		}
	}

	// Close the client before cancelling: the server drains in-flight
	// connections on shutdown, so a held-open connection would block exit.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("run exited: %v", err)
	}
}

func TestRunBadFlags(t *testing.T) {
	ctx := context.Background()
	for _, args := range [][]string{
		{"-policy", "martian"},
		{"-addr", "256.0.0.1:bad"},
		{"positional"},
	} {
		if err := run(ctx, args, io.Discard, nil); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
