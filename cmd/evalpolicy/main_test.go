package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

// buildDataset synthesizes a JSONL dataset where action 2 is clearly best.
func buildDataset(t *testing.T, n int) *bytes.Buffer {
	t.Helper()
	r := stats.NewRand(1)
	ds := make(core.Dataset, n)
	for i := range ds {
		a := core.Action(r.Intn(3))
		reward := 0.3
		if a == 2 {
			reward = 0.8
		}
		ds[i] = core.Datapoint{
			Context:    core.Context{Features: core.Vector{r.Float64()}, NumActions: 3},
			Action:     a,
			Reward:     reward + r.NormFloat64()*0.05,
			Propensity: 1.0 / 3,
		}
	}
	var buf bytes.Buffer
	if err := ds.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestEvalPolicyConstantSet(t *testing.T) {
	in := buildDataset(t, 20000)
	var out bytes.Buffer
	if err := run(in, &out, nil); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "best: always-2") {
		t.Errorf("should pick always-2:\n%s", s)
	}
	if !strings.Contains(s, "certified winner") {
		t.Errorf("20k points should certify:\n%s", s)
	}
}

func TestEvalPolicySNIPS(t *testing.T) {
	in := buildDataset(t, 5000)
	var out bytes.Buffer
	if err := run(in, &out, []string{"-estimator", "snips"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "snips") {
		t.Errorf("output should name the estimator:\n%s", out.String())
	}
}

func TestEvalPolicyStumps(t *testing.T) {
	in := buildDataset(t, 5000)
	var out bytes.Buffer
	if err := run(in, &out, []string{"-policies", "stumps"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "best: stump") {
		t.Errorf("stump winner expected:\n%s", out.String())
	}
}

func TestEvalPolicyErrors(t *testing.T) {
	if err := run(strings.NewReader(""), &bytes.Buffer{}, nil); err == nil {
		t.Error("empty dataset should fail")
	}
	in := buildDataset(t, 100)
	if err := run(in, &bytes.Buffer{}, []string{"-estimator", "nope"}); err == nil {
		t.Error("unknown estimator should fail")
	}
	in = buildDataset(t, 100)
	if err := run(in, &bytes.Buffer{}, []string{"-policies", "nope"}); err == nil {
		t.Error("unknown policy set should fail")
	}
	if err := run(strings.NewReader("not json"), &bytes.Buffer{}, nil); err == nil {
		t.Error("malformed input should fail")
	}
	if err := run(nil, &bytes.Buffer{}, []string{"-i", "/nonexistent/path"}); err == nil {
		t.Error("missing file should fail")
	}
}
