// Command evalpolicy evaluates candidate policies offline against an
// exploration dataset in JSONL form (as produced by cmd/healthgen or
// core.Dataset.WriteJSONL) — step 3 of the harvesting methodology as a
// standalone tool:
//
//	healthgen -n 50000 -normalize | evalpolicy -policies constant
//
// evaluates every constant policy (one per action) with simultaneous
// confidence intervals and reports the certified winner. The -estimator
// flag selects ips (default) or snips.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/ope"
	"repro/internal/parallel"
	"repro/internal/policy"
)

func main() {
	if err := run(os.Stdin, os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "evalpolicy:", err)
		os.Exit(1)
	}
}

// run reads a dataset from r and writes the evaluation to w.
func run(r io.Reader, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("evalpolicy", flag.ContinueOnError)
	input := fs.String("i", "-", "input dataset path (- for stdin)")
	estName := fs.String("estimator", "ips", "estimator: ips|snips")
	polSpec := fs.String("policies", "constant", "policy set: constant (one per action) | stumps (feature-threshold grid)")
	delta := fs.Float64("delta", 0.05, "simultaneous failure probability for the intervals")
	minimize := fs.Bool("minimize", false, "treat rewards as costs")
	workers := fs.Int("workers", 0, "per-policy evaluation concurrency (0 = NumCPU, 1 = serial; output identical for any value)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := r
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	ds, err := core.ReadJSONL(in)
	if err != nil {
		return err
	}
	if len(ds) == 0 {
		return fmt.Errorf("empty dataset")
	}
	if err := ds.Validate(); err != nil {
		return fmt.Errorf("invalid dataset: %w", err)
	}

	var est ope.Estimator
	switch *estName {
	case "ips":
		est = ope.IPS{}
	case "snips":
		est = ope.SNIPS{}
	default:
		return fmt.Errorf("unknown estimator %q", *estName)
	}

	k := 0
	dim := 0
	for i := range ds {
		if ds[i].Context.NumActions > k {
			k = ds[i].Context.NumActions
		}
		if len(ds[i].Context.Features) > dim {
			dim = len(ds[i].Context.Features)
		}
	}
	var policies []core.Policy
	var names []string
	switch *polSpec {
	case "constant":
		for a := 0; a < k; a++ {
			policies = append(policies, policy.Constant{A: core.Action(a)})
			names = append(names, fmt.Sprintf("always-%d", a))
		}
	case "stumps":
		class := policy.StumpClass{
			NumFeatures: dim,
			Cuts:        []float64{0.25, 0.5, 0.75},
			NumActions:  k,
		}
		class.Enumerate(func(idx int, p core.Policy) bool {
			policies = append(policies, p)
			names = append(names, fmt.Sprint(p))
			return true
		})
	default:
		return fmt.Errorf("unknown policy set %q", *polSpec)
	}

	// Fan the per-policy estimates out across workers (each is a pure
	// function of the shared log), then reduce serially in candidate order
	// — output is identical for every worker count.
	rangeHi, err := ope.DeriveRangeHi(ds)
	if err != nil {
		return err
	}
	ests := make([]ope.Estimate, len(policies))
	if err := parallel.For(*workers, len(policies), func(i int) error {
		e, err := est.Estimate(policies[i], ds)
		if err != nil {
			return fmt.Errorf("candidate %d: %w", i, err)
		}
		ests[i] = e
		return nil
	}); err != nil {
		return err
	}
	sel, err := ope.SelectFromEstimates(ests, rangeHi, *delta, *minimize)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "dataset: %d datapoints, %d actions, min propensity %.4g\n",
		len(ds), k, ds.MinPropensity())
	fmt.Fprintf(w, "evaluating %d policies with %s (simultaneous %.0f%% intervals)\n\n",
		len(policies), est.Name(), 100*(1-*delta))
	// Print every candidate for small sets; top-only for large ones.
	if len(sel.Scores) <= 20 {
		for i, s := range sel.Scores {
			marker := " "
			if i == sel.Best.Index {
				marker = "*"
			}
			fmt.Fprintf(w, "%s %-24s %s\n", marker, names[i], s.Interval)
		}
	}
	fmt.Fprintf(w, "\nbest: %s  %s", names[sel.Best.Index], sel.Best.Interval)
	if sel.Separated {
		fmt.Fprintf(w, "  (certified winner at this confidence)\n")
	} else {
		fmt.Fprintf(w, "  (NOT separated from the runners-up — more data needed)\n")
	}
	return nil
}
