package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/stats"
)

func banditJSONL(t *testing.T, n int) *bytes.Buffer {
	t.Helper()
	r := stats.NewRand(1)
	ds := make(core.Dataset, n)
	for i := range ds {
		x := core.Vector{r.Float64() * 2}
		a := core.Action(r.Intn(2))
		reward := 1 + x[0]
		if a == 1 {
			reward = 2 - x[0]
		}
		ds[i] = core.Datapoint{
			Context:    core.Context{Features: x, NumActions: 2},
			Action:     a,
			Reward:     reward,
			Propensity: 0.5,
		}
	}
	var buf bytes.Buffer
	if err := ds.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestTrainPolicyProducesLoadableModel(t *testing.T) {
	in := banditJSONL(t, 8000)
	var out, diag bytes.Buffer
	if err := run(in, &out, &diag, []string{"-report"}); err != nil {
		t.Fatal(err)
	}
	var model learn.RewardModel
	if err := json.Unmarshal(out.Bytes(), &model); err != nil {
		t.Fatalf("emitted model not loadable: %v\n%s", err, out.String())
	}
	if model.NumActions() != 2 {
		t.Errorf("NumActions = %d", model.NumActions())
	}
	// The loaded model's greedy policy should match the world: action 0
	// for large x, action 1 for small x.
	g := model.GreedyPolicy(false)
	if got := g.Act(&core.Context{Features: core.Vector{1.8}, NumActions: 2}); got != 0 {
		t.Errorf("greedy(1.8) = %d, want 0", got)
	}
	if got := g.Act(&core.Context{Features: core.Vector{0.2}, NumActions: 2}); got != 1 {
		t.Errorf("greedy(0.2) = %d, want 1", got)
	}
	if !strings.Contains(diag.String(), "SNIPS") {
		t.Errorf("report missing: %q", diag.String())
	}
}

func TestTrainPolicyValidation(t *testing.T) {
	var out, diag bytes.Buffer
	if err := run(strings.NewReader(""), &out, &diag, nil); err == nil {
		t.Error("empty dataset should fail")
	}
	if err := run(strings.NewReader("garbage"), &out, &diag, nil); err == nil {
		t.Error("malformed input should fail")
	}
	if err := run(nil, &out, &diag, []string{"-i", "/nonexistent"}); err == nil {
		t.Error("missing file should fail")
	}
}
