// Command trainpolicy fits a reward model from an exploration dataset
// (JSONL, as produced by cmd/healthgen or any harvester output) and emits
// the model as a JSON artifact — the optimize step of the methodology as a
// standalone tool, producing something a serving system can load:
//
//	healthgen -n 50000 -normalize | trainpolicy -minimize=false > model.json
//
// With -report, the tool also scores the fitted model's greedy policy on
// the training data with SNIPS (a quick sanity number; use a held-out
// dataset and cmd/evalpolicy for honest evaluation).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/ope"
)

func main() {
	if err := run(os.Stdin, os.Stdout, os.Stderr, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trainpolicy:", err)
		os.Exit(1)
	}
}

// run reads a dataset from r, writes the model JSON to w and the optional
// report to diag.
func run(r io.Reader, w, diag io.Writer, args []string) error {
	fs := flag.NewFlagSet("trainpolicy", flag.ContinueOnError)
	input := fs.String("i", "-", "input dataset path (- for stdin)")
	lambda := fs.Float64("lambda", 1e-3, "ridge regularization")
	iw := fs.Bool("iw", false, "importance-weight the regression by 1/propensity")
	minimize := fs.Bool("minimize", false, "rewards are costs (report argmin policy)")
	report := fs.Bool("report", false, "print a SNIPS training-data sanity score to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in := r
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	ds, err := core.ReadJSONL(in)
	if err != nil {
		return err
	}
	if len(ds) == 0 {
		return fmt.Errorf("empty dataset")
	}
	if err := ds.Validate(); err != nil {
		return fmt.Errorf("invalid dataset: %w", err)
	}
	model, err := learn.FitRewardModel(ds, learn.FitOptions{
		Lambda:             *lambda,
		ImportanceWeighted: *iw,
	})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(model); err != nil {
		return err
	}
	if *report {
		est, err := (ope.SNIPS{}).Estimate(model.GreedyPolicy(*minimize), ds)
		if err != nil {
			return fmt.Errorf("report: %w", err)
		}
		fmt.Fprintf(diag, "trained on %d datapoints; greedy policy SNIPS (training data): %s\n",
			len(ds), est)
	}
	return nil
}
