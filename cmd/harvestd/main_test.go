package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harvestd"
	"repro/internal/harvester/binrec"
	"repro/internal/lbsim"
	"repro/internal/stats"
)

// writeTestLogs materializes one nginx access log and one JSONL dataset.
func writeTestLogs(t *testing.T, dir string) (nginxPath, jsonlPath string, total int64) {
	t.Helper()
	r := stats.NewRand(7)
	var nb strings.Builder
	const nNginx = 200
	for i := 0; i < nNginx; i++ {
		conns := []int{r.Intn(8), r.Intn(8)}
		up := r.Intn(2)
		rt := 0.002 + 0.0005*float64(conns[up]) + 0.001*r.Float64()
		fmt.Fprintf(&nb,
			"127.0.0.1:%d - - [06/Jul/2026:10:30:00 +0000] \"GET /r/%d HTTP/1.1\" 200 42 \"-\" \"t\" rt=%.6f upstream=%d conns=%d|%d prop=0.500000\n",
			1000+i, i, rt, up, conns[0], conns[1])
	}
	nginxPath = filepath.Join(dir, "access.log")
	if err := os.WriteFile(nginxPath, []byte(nb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	const nJSONL = 300
	ds := make(core.Dataset, nJSONL)
	for i := range ds {
		conns := []int{r.Intn(8), r.Intn(8)}
		a := core.Action(r.Intn(2))
		ds[i] = core.Datapoint{
			Context:    lbsim.BuildContext(conns, 0, 1),
			Action:     a,
			Reward:     0.002 + 0.001*float64(conns[a]) + 0.001*r.Float64(),
			Propensity: 0.5,
		}
	}
	var jb strings.Builder
	if err := ds.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	jsonlPath = filepath.Join(dir, "dataset.jsonl")
	if err := os.WriteFile(jsonlPath, []byte(jb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return nginxPath, jsonlPath, nNginx + nJSONL
}

// startRun launches run() as main would, returning the API base URL and a
// channel carrying its exit error after ctx is cancelled.
func startRun(t *testing.T, ctx context.Context, args []string) (string, <-chan error) {
	t.Helper()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, args, io.Discard, ready) }()
	select {
	case url := <-ready:
		return url, errc
	case err := <-errc:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for startup")
	}
	return "", nil
}

// fetchEstimates polls /estimates until every policy reports wantN samples.
func fetchEstimates(t *testing.T, base string, wantN int64) []harvestd.PolicyEstimate {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var last []harvestd.PolicyEstimate
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/estimates")
		if err == nil {
			var ests []harvestd.PolicyEstimate
			if json.NewDecoder(resp.Body).Decode(&ests) == nil {
				last = ests
			}
			resp.Body.Close()
			done := len(last) > 0
			for _, pe := range last {
				if pe.N != wantN {
					done = false
				}
			}
			if done {
				return last
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("estimates never reached n=%d: %+v", wantN, last)
	return nil
}

// TestRunResumeAfterRestart is the binary's lifecycle acceptance test: a
// daemon ingests an nginx log and a JSONL dataset concurrently, terminates
// on signal (context cancellation — exactly what signal.NotifyContext
// delivers on SIGTERM) writing a checkpoint, and a restarted daemon reports
// identical estimator state (n, means, intervals) from that checkpoint.
func TestRunResumeAfterRestart(t *testing.T) {
	dir := t.TempDir()
	nginxPath, jsonlPath, total := writeTestLogs(t, dir)
	ckpt := filepath.Join(dir, "state.json")
	common := []string{
		"-addr", "127.0.0.1:0",
		"-checkpoint", ckpt,
		"-policies", "leastloaded,constant:0,constant:1",
		"-workers", "2",
	}

	ctx1, cancel1 := context.WithCancel(context.Background())
	url1, errc1 := startRun(t, ctx1, append([]string{
		"-nginx", nginxPath, "-jsonl", jsonlPath,
	}, common...))
	before := fetchEstimates(t, url1, total)
	cancel1() // SIGTERM
	if err := <-errc1; err != nil {
		t.Fatalf("first run exited: %v", err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint after shutdown: %v", err)
	}

	// Restart with no sources: everything it knows came from the checkpoint.
	ctx2, cancel2 := context.WithCancel(context.Background())
	url2, errc2 := startRun(t, ctx2, common)
	after := fetchEstimates(t, url2, total)
	cancel2()
	if err := <-errc2; err != nil {
		t.Fatalf("second run exited: %v", err)
	}

	if !reflect.DeepEqual(before, after) {
		t.Errorf("state not identical across restart:\nbefore %+v\nafter  %+v", before, after)
	}
}

func TestRunBadFlags(t *testing.T) {
	ctx := context.Background()
	for _, args := range [][]string{
		{"-policies", "martian"},
		{"-policies", "constant:x"},
		{"-policies", ""},
		{"-addr", "256.0.0.1:bad"},
		{"positional"},
	} {
		if err := run(ctx, args, io.Discard, nil); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

// TestRunDebugHandlersGated pins the -debug-addr contract: with the flag
// unset (the default) the API server exposes no pprof/expvar handlers; with
// it set they appear on their own listener, never on the API address.
func TestRunDebugHandlersGated(t *testing.T) {
	status := func(url string) int {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// Off by default: the debug paths 404 on the API server.
	ctx1, cancel1 := context.WithCancel(context.Background())
	url1, errc1 := startRun(t, ctx1, []string{
		"-addr", "127.0.0.1:0", "-policies", "constant:0",
	})
	for _, p := range []string{"/debug/pprof/", "/debug/vars"} {
		if code := status(url1 + p); code != http.StatusNotFound {
			t.Errorf("GET %s without -debug-addr = %d, want 404", p, code)
		}
	}
	cancel1()
	if err := <-errc1; err != nil {
		t.Fatalf("run exited: %v", err)
	}

	// Opted in: the handlers serve on the debug listener, and the API
	// server still refuses them.
	var out syncBuffer
	ready := make(chan string, 1)
	errc2 := make(chan error, 1)
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		errc2 <- run(ctx2, []string{
			"-addr", "127.0.0.1:0", "-policies", "constant:0",
			"-debug-addr", "127.0.0.1:0",
		}, &out, ready)
	}()
	var url2 string
	select {
	case url2 = <-ready:
	case err := <-errc2:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for startup")
	}
	var debugBase string
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.Contains(line, "debug (pprof/expvar)") {
			i := strings.Index(line, "http://")
			debugBase = strings.TrimSuffix(strings.TrimSpace(line[i:]), "/debug/pprof/")
		}
	}
	if debugBase == "" {
		t.Fatalf("no debug line in output:\n%s", out.String())
	}
	for _, p := range []string{"/debug/pprof/", "/debug/vars"} {
		if code := status(debugBase + p); code != http.StatusOK {
			t.Errorf("GET %s on debug listener = %d, want 200", p, code)
		}
		if code := status(url2 + p); code != http.StatusNotFound {
			t.Errorf("GET %s on API server = %d, want 404", p, code)
		}
	}
	cancel2()
	if err := <-errc2; err != nil {
		t.Fatalf("run exited: %v", err)
	}
}

// syncBuffer makes run's stdout writer safe to read while daemon goroutines
// may still be logging to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRunMissingSourceStillServes(t *testing.T) {
	// A missing log file fails that source, not the daemon.
	ctx, cancel := context.WithCancel(context.Background())
	url, errc := startRun(t, ctx, []string{
		"-addr", "127.0.0.1:0",
		"-nginx", filepath.Join(t.TempDir(), "absent.log"),
		"-policies", "constant:0",
	})
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("run exited: %v", err)
	}
}

// TestRunBinSource drives the -bin flag end to end: a binrec file written
// by the codec is ingested through the batched binary path and every
// candidate reports the full record count.
func TestRunBinSource(t *testing.T) {
	dir := t.TempDir()
	r := stats.NewRand(9)
	const n = 250
	ds := make(core.Dataset, n)
	for i := range ds {
		conns := []int{r.Intn(8), r.Intn(8)}
		a := core.Action(r.Intn(2))
		ds[i] = core.Datapoint{
			Context:    lbsim.BuildContext(conns, 0, 1),
			Action:     a,
			Reward:     0.002 + 0.001*float64(conns[a]) + 0.001*r.Float64(),
			Propensity: 0.5,
			Seq:        int64(i),
		}
	}
	binPath := filepath.Join(dir, "records.bin")
	f, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := binrec.NewEncoder(f)
	if err != nil {
		t.Fatal(err)
	}
	enc.SegmentBytes = 1024
	for i := range ds {
		if err := enc.Write(&ds[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, errc := startRun(t, ctx, []string{
		"-addr", "127.0.0.1:0", "-bin", binPath,
		"-policies", "uniform,leastloaded,constant:0",
	})
	ests := fetchEstimates(t, base, n)
	for _, pe := range ests {
		if pe.N != n {
			t.Errorf("%s folded %d records, want %d", pe.Policy, pe.N, n)
		}
	}
	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("run: %v", err)
	}
}
