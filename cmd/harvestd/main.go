// Command harvestd runs the continuous harvesting daemon: it tails
// exploration logs (netlb access logs, cache decision logs, core JSONL
// datasets) into a registry of candidate policies and serves live
// counterfactual estimates over HTTP — the paper's "harvest continuously"
// pitch as a long-running service.
//
// Usage:
//
//	harvestd [-addr HOST:PORT] [-nginx PATH,...] [-jsonl PATH,...]
//	         [-bin PATH,...] [-cachelog PATH,...] [-follow] [-strict]
//	         [-types N] [-horizon F]
//	         [-policies SPEC] [-workers N] [-queue N] [-clip F] [-delta F]
//	         [-floor F] [-shard-id NAME] [-checkpoint PATH] [-checkpoint-interval D]
//	         [-debug-addr HOST:PORT] [-trace PATH]
//
// A policy SPEC is a comma-separated list of candidates to evaluate:
// "uniform" (uniform random), "leastloaded" (least-connections), and
// "constant:K" (always route to K). The daemon runs until SIGINT/SIGTERM,
// then drains in-flight lines, writes a final checkpoint (when -checkpoint
// is set), and prints the final estimates. A restart with the same
// -checkpoint resumes exactly where it left off.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/harvestd"
	"repro/internal/lbsim"
	"repro/internal/obs"
	"repro/internal/policy"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "harvestd:", err)
		os.Exit(1)
	}
}

// run wires flags → sources → registry → daemon, serves until ctx is
// cancelled (the SIGTERM path), then shuts down gracefully. When ready is
// non-nil the API base URL is sent on it after startup — the hook the
// integration tests use to drive a full daemon lifecycle in-process.
func run(ctx context.Context, args []string, stdout io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("harvestd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8347", "HTTP API listen address")
	nginx := fs.String("nginx", "", "comma-separated nginx-style access logs to harvest")
	jsonl := fs.String("jsonl", "", "comma-separated core JSONL datasets to harvest")
	bin := fs.String("bin", "", "comma-separated binrec binary record files to harvest (see recconv)")
	cachelog := fs.String("cachelog", "", "comma-separated cache decision logs to harvest")
	follow := fs.Bool("follow", false, "keep tailing nginx/jsonl sources as they grow")
	strict := fs.Bool("strict", false, "abort a nginx source on the first malformed line")
	types := fs.Int("types", 1, "request types in nginx logs (typed routing contexts)")
	horizon := fs.Float64("horizon", 2000, "cache harvest look-ahead horizon")
	policies := fs.String("policies", "uniform,leastloaded,constant:0",
		"candidate policies: uniform | leastloaded | constant:K")
	workers := fs.Int("workers", 0, "ingestion workers (0 = GOMAXPROCS, max 8)")
	queue := fs.Int("queue", 4096, "ingestion queue capacity")
	clip := fs.Float64("clip", 10, "importance-weight cap for clipped IPS (<=0 disables)")
	delta := fs.Float64("delta", 0.05, "default interval failure probability")
	floor := fs.Float64("floor", harvestd.DefaultPropensityFloor,
		"propensity floor for estimator-health diagnostics (<=0 disables)")
	shardID := fs.String("shard-id", "", "shard name reported in fleet snapshots (empty = listen address)")
	checkpoint := fs.String("checkpoint", "", "checkpoint file (empty disables)")
	ckptEvery := fs.Duration("checkpoint-interval", 30*time.Second, "time between checkpoints")
	debugAddr := fs.String("debug-addr", "", "pprof/expvar listen address (empty disables)")
	tracePath := fs.String("trace", "", "write JSONL pipeline trace to this file (empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
		if nWorkers > 8 {
			nWorkers = 8
		}
	}
	reg, err := harvestd.NewRegistry(nWorkers, *clip)
	if err != nil {
		return err
	}
	if err := registerPolicies(reg, *policies); err != nil {
		return err
	}

	floorVal := *floor
	if floorVal <= 0 {
		floorVal = -1 // negative Config value disables floor accounting
	}

	var tracer *obs.Tracer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return fmt.Errorf("trace file: %w", err)
		}
		defer func() { _ = f.Close() }()
		tracer = obs.NewTracer(f, nil)
	}

	d, err := harvestd.New(harvestd.Config{
		Workers:            nWorkers,
		QueueSize:          *queue,
		Clip:               *clip,
		Delta:              *delta,
		Addr:               *addr,
		CheckpointPath:     *checkpoint,
		CheckpointInterval: *ckptEvery,
		PropensityFloor:    floorVal,
		ShardID:            *shardID,
		Tracer:             tracer,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(stdout, format+"\n", a...)
		},
	}, reg)
	if err != nil {
		return err
	}

	debug, err := obs.StartDebug(*debugAddr)
	if err != nil {
		return err
	}
	if debug != nil {
		defer func() { _ = debug.Close() }()
		fmt.Fprintf(stdout, "harvestd: debug (pprof/expvar) on http://%s/debug/pprof/\n", debug.Addr())
	}
	for _, p := range splitPaths(*nginx) {
		d.AddSource(&harvestd.NginxSource{
			Path: p, Follow: *follow, NumTypes: *types, Strict: *strict,
		})
	}
	for _, p := range splitPaths(*jsonl) {
		d.AddSource(&harvestd.JSONLSource{Path: p, Follow: *follow})
	}
	for _, p := range splitPaths(*bin) {
		d.AddSource(&harvestd.BinSource{Path: p, Follow: *follow})
	}
	for _, p := range splitPaths(*cachelog) {
		d.AddSource(&harvestd.CacheLogSource{Path: p, Horizon: *horizon})
	}

	if err := d.Start(ctx); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "harvestd: evaluating %s on %s\n",
		strings.Join(reg.Names(), ", "), d.URL())
	if ready != nil {
		ready <- d.URL()
	}

	<-ctx.Done()
	fmt.Fprintln(stdout, "harvestd: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := d.Shutdown(sctx); err != nil {
		return err
	}
	for _, pe := range d.Estimates() {
		fmt.Fprintf(stdout, "harvestd: %-14s n=%-8d snips=%.6f ± %.6f\n",
			pe.Policy, pe.N, pe.SNIPS.Value, pe.SNIPS.StdErr)
	}
	for _, err := range d.SourceErrors() {
		fmt.Fprintf(stdout, "harvestd: source error: %v\n", err)
	}
	return nil
}

// registerPolicies parses a candidate spec ("uniform,leastloaded,constant:1")
// into the registry.
func registerPolicies(reg *harvestd.Registry, spec string) error {
	items := splitPaths(spec)
	if len(items) == 0 {
		return fmt.Errorf("no candidate policies given")
	}
	for _, item := range items {
		switch {
		case item == "uniform":
			if err := reg.Register("uniform", policy.UniformRandom{}); err != nil {
				return err
			}
		case item == "leastloaded":
			if err := reg.Register("leastloaded", lbsim.LeastLoaded{}); err != nil {
				return err
			}
		case strings.HasPrefix(item, "constant:"):
			k, err := strconv.Atoi(strings.TrimPrefix(item, "constant:"))
			if err != nil || k < 0 {
				return fmt.Errorf("bad constant policy %q", item)
			}
			if err := reg.Register(fmt.Sprintf("always-%d", k), policy.Constant{A: core.Action(k)}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown policy %q (want uniform | leastloaded | constant:K)", item)
		}
	}
	return nil
}

// splitPaths splits a comma-separated flag value, dropping empties.
func splitPaths(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
