package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro/internal/harvestd
cpu: AMD EPYC 7B13
BenchmarkAccumFold-8        	25000000	        40.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkSnapshotEncode-8   	   60000	     20000 ns/op	     657 B/op	       7 allocs/op
PASS
ok  	repro/internal/harvestd	2.5s
pkg: repro/internal/fleet
BenchmarkRouterAssign-8     	 5000000	       250.0 ns/op
PASS
ok  	repro/internal/fleet	1.4s
`

func TestParseSample(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "AMD EPYC 7B13" {
		t.Errorf("header = %q/%q/%q", rep.Goos, rep.Goarch, rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}

	fold := rep.Benchmarks[0]
	if fold.Name != "AccumFold" || fold.Procs != 8 {
		t.Errorf("first benchmark = %+v", fold)
	}
	if fold.Package != "repro/internal/harvestd" {
		t.Errorf("package = %q", fold.Package)
	}
	if fold.Iterations != 25000000 || fold.NsPerOp != 40 {
		t.Errorf("measurements = %+v", fold)
	}
	if fold.OpsPerSec != 25e6 {
		t.Errorf("ops/sec = %v, want 25e6", fold.OpsPerSec)
	}
	if fold.BytesPerOp == nil || *fold.BytesPerOp != 0 {
		t.Errorf("bytes/op = %v", fold.BytesPerOp)
	}
	if fold.AllocsPerOp == nil || *fold.AllocsPerOp != 0 {
		t.Errorf("allocs/op = %v", fold.AllocsPerOp)
	}

	enc := rep.Benchmarks[1]
	if enc.Name != "SnapshotEncode" || *enc.BytesPerOp != 657 || *enc.AllocsPerOp != 7 {
		t.Errorf("second benchmark = %+v", enc)
	}

	// The pkg header switches mid-stream; no -benchmem on the last one.
	router := rep.Benchmarks[2]
	if router.Package != "repro/internal/fleet" {
		t.Errorf("router package = %q", router.Package)
	}
	if router.BytesPerOp != nil || router.AllocsPerOp != nil {
		t.Errorf("router should have no memory stats: %+v", router)
	}
	if router.NsPerOp != 250 || router.OpsPerSec != 4e6 {
		t.Errorf("router measurements = %+v", router)
	}
}

func TestParseRejectsEmptyAndMalformed(t *testing.T) {
	for name, input := range map[string]string{
		"empty":       "",
		"no-bench":    "PASS\nok  \trepro/internal/harvestd\t0.1s\n",
		"short-line":  "BenchmarkX-8\t100\n",
		"bad-iters":   "BenchmarkX-8\tmany\t40 ns/op\n",
		"bad-value":   "BenchmarkX-8\t100\tforty ns/op\n",
		"no-ns-units": "BenchmarkX-8\t100\t5 B/op\t1 allocs/op\n",
	} {
		if _, err := parse(strings.NewReader(input)); err == nil {
			t.Errorf("%s: parse accepted %q", name, input)
		}
	}
}

func TestSplitProcs(t *testing.T) {
	for _, tc := range []struct {
		in    string
		name  string
		procs int
	}{
		{"AccumFold-8", "AccumFold", 8},
		{"AccumFold", "AccumFold", 1},
		{"Fold/clip-3-16", "Fold/clip-3", 16},
		{"Weird-", "Weird-", 1},
	} {
		name, procs := splitProcs(tc.in)
		if name != tc.name || procs != tc.procs {
			t.Errorf("splitProcs(%q) = %q,%d want %q,%d", tc.in, name, procs, tc.name, tc.procs)
		}
	}
}
