// Command benchjson converts `go test -bench` text output into a stable
// JSON report (BENCH_harvestd.json in CI) so benchmark trends are diffable
// and machine-checkable without re-parsing Go's bench format downstream.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson [-o FILE]
//
// Each benchmark line contributes one record with iterations, ns/op, the
// derived ops/sec, and — when -benchmem was on — B/op and allocs/op.
// Exit status is non-zero when the input contains no benchmark lines (a CI
// bench step that silently measured nothing should fail) or when any
// benchmark line is malformed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name       string  `json:"name"`
	Package    string  `json:"package,omitempty"`
	Procs      int     `json:"procs"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// BytesPerOp/AllocsPerOp are present only when the run used -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Report is the emitted JSON document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "usage: go test -bench . | benchjson [-o FILE]")
		os.Exit(2)
	}
	report, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` output, tracking the pkg/goos/goarch/cpu
// header lines and collecting every Benchmark result line.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			b.Package = pkg
			rep.Benchmarks = append(rep.Benchmarks, *b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines in input")
	}
	return rep, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkAccumFold-8   12345678   95.3 ns/op   0 B/op   0 allocs/op
func parseBenchLine(line string) (*Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return nil, fmt.Errorf("short benchmark line %q", line)
	}
	name, procs := splitProcs(strings.TrimPrefix(fields[0], "Benchmark"))
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("benchmark %s: bad iteration count %q", name, fields[1])
	}
	b := &Benchmark{Name: name, Procs: procs, Iterations: iters}
	// The rest is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("benchmark %s: bad value %q", name, fields[i])
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
			if v > 0 {
				b.OpsPerSec = 1e9 / v
			}
		case "B/op":
			val := v
			b.BytesPerOp = &val
		case "allocs/op":
			val := v
			b.AllocsPerOp = &val
		}
	}
	if b.NsPerOp == 0 && b.OpsPerSec == 0 {
		return nil, fmt.Errorf("benchmark %s: no ns/op measurement in %q", name, line)
	}
	return b, nil
}

// splitProcs splits the -N GOMAXPROCS suffix off a benchmark name; a name
// without one (GOMAXPROCS=1) reports procs=1.
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 1
	}
	return name[:i], n
}
