package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obswatch"
)

func TestParseTargets(t *testing.T) {
	got, err := parseTargets("harvestd:shard-a=http://127.0.0.1:8455, rolloutd:ctl=http://127.0.0.1:8457")
	if err != nil {
		t.Fatal(err)
	}
	want := []obswatch.Target{
		{Kind: "harvestd", Name: "shard-a", URL: "http://127.0.0.1:8455"},
		{Kind: "rolloutd", Name: "ctl", URL: "http://127.0.0.1:8457"},
	}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("parsed %+v, want %+v", got, want)
	}
	for _, bad := range []string{"", "noseparator", "kind-only:x", "badkind:n=http://x"} {
		if _, err := parseTargets(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestRunLifecycle boots fleetwatch against one fake daemon, waits for a
// scrape round, checks the API and the incident file plumbing, and shuts
// down on context cancel.
func TestRunLifecycle(t *testing.T) {
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		_, _ = io.WriteString(w, "lbd_uptime_seconds 1\n")
	}))
	t.Cleanup(fake.Close)

	incidents := filepath.Join(t.TempDir(), "incidents.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	var out bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-targets", "lbd:lb=" + fake.URL,
			"-interval", "20ms",
			"-incidents", incidents,
		}, &out, ready)
	}()
	var base string
	select {
	case base = <-ready:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	var status obswatch.Status
	for {
		resp, err := http.Get(base + "/status")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&status)
		_ = resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if status.Ticks >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no scrape rounds after 5s: %+v", status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(status.Targets) != 1 || !status.Targets[0].Up || status.AlertsFiring != 0 {
		t.Fatalf("status = %+v, want one healthy target and no alerts", status)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "fleetwatch: final ticks=") {
		t.Fatalf("missing final summary in output:\n%s", out.String())
	}
	if _, err := os.Stat(incidents); err != nil {
		t.Fatalf("incident file not created: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-targets", ""}, io.Discard, nil); err == nil {
		t.Fatal("missing targets accepted")
	}
	if err := run(context.Background(), []string{"-targets", "lbd:a=http://x", "extra"}, io.Discard, nil); err == nil {
		t.Fatal("positional arguments accepted")
	}
}
