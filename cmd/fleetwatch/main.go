// Command fleetwatch is the fleet health watcher: it scrapes every OPE
// daemon's /metrics (plus /freshness on harvest surfaces and /gates on
// rollout controllers) on a fixed cadence, retains bounded ring-buffer
// time series, and evaluates a declarative alert table — scrape liveness,
// estimator-health collapse (ESS floor, clip ceiling), shard staleness,
// pipeline freshness SLOs, and rollout gate flapping — with for-duration
// hysteresis. Every alert open and resolve is appended as a versioned
// incident record to a JSONL file (-incidents), and the live state is
// served on /alerts, /series, /status, /healthz, and /metrics.
//
// Usage:
//
//	fleetwatch -targets kind:name=URL[,kind:name=URL...]
//	           [-addr HOST:PORT] [-interval D] [-scrape-timeout D]
//	           [-incidents PATH] [-for D] [-ess-floor F] [-clip-ceiling F]
//	           [-lag-slo SECS] [-stale-slo SECS]
//	           [-flap-window N] [-flap-threshold N] [-series-cap N]
//
// Target kinds are lbd, harvestd, harvestagg, and rolloutd; the kind
// selects which surfaces are scraped beyond /metrics. Example:
//
//	fleetwatch -targets harvestd:shard-a=http://127.0.0.1:8455,rolloutd:ctl=http://127.0.0.1:8457
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obswatch"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "fleetwatch:", err)
		os.Exit(1)
	}
}

// run wires flags → watcher, serves until ctx is cancelled, then shuts
// down gracefully. When ready is non-nil the API base URL is sent on it
// after startup — the hook the tests use to drive a full lifecycle
// in-process.
func run(ctx context.Context, args []string, stdout io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("fleetwatch", flag.ContinueOnError)
	targetsSpec := fs.String("targets", "", "comma-separated kind:name=URL scrape targets (required)")
	addr := fs.String("addr", "127.0.0.1:8460", "HTTP API listen address")
	interval := fs.Duration("interval", 2*time.Second, "scrape period")
	scrapeTimeout := fs.Duration("scrape-timeout", 5*time.Second, "per-fetch HTTP timeout")
	incidents := fs.String("incidents", "", "incident JSONL output file (empty disables)")
	forDur := fs.Duration("for", 0, "hysteresis: a condition must hold this long before its alert opens")
	essFloor := fs.Float64("ess-floor", 0.1, "alert when a policy's ESS fraction drops below this")
	clipCeiling := fs.Float64("clip-ceiling", 0.4, "alert when a policy's clip fraction exceeds this")
	lagSLO := fs.Float64("lag-slo", 30, "alert when a harvest surface's watermark age exceeds this many seconds")
	staleSLO := fs.Float64("stale-slo", 15, "alert when a fleet shard's last pull is older than this many seconds")
	flapWindow := fs.Int("flap-window", 10, "trailing gate decisions inspected for flapping")
	flapThreshold := fs.Int("flap-threshold", 3, "alert at this many outcome changes inside the flap window")
	seriesCap := fs.Int("series-cap", 512, "samples retained per time series")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	targets, err := parseTargets(*targetsSpec)
	if err != nil {
		return err
	}

	var incidentW io.Writer
	if *incidents != "" {
		f, err := os.OpenFile(*incidents, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("opening incident log: %w", err)
		}
		defer func() { _ = f.Close() }()
		incidentW = f
	}

	w, err := obswatch.New(obswatch.Config{
		Targets: targets,
		Rules: obswatch.DefaultRules(obswatch.RuleDefaults{
			ESSFloor:      *essFloor,
			ClipCeiling:   *clipCeiling,
			LagSLO:        *lagSLO,
			StaleSLO:      *staleSLO,
			FlapThreshold: *flapThreshold,
			For:           *forDur,
		}),
		Interval:      *interval,
		ScrapeTimeout: *scrapeTimeout,
		SeriesCap:     *seriesCap,
		FlapWindow:    *flapWindow,
		IncidentW:     incidentW,
		Addr:          *addr,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(stdout, format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}
	if err := w.Start(ctx); err != nil {
		return err
	}
	if ready != nil {
		ready <- w.URL()
	}

	<-ctx.Done()
	fmt.Fprintln(stdout, "fleetwatch: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := w.Shutdown(sctx); err != nil {
		return err
	}
	st := w.StatusNow()
	fmt.Fprintf(stdout, "fleetwatch: final ticks=%d firing=%d incidents=%d\n",
		st.Ticks, st.AlertsFiring, st.Incidents)
	return nil
}

// parseTargets parses "kind:name=URL,kind:name=URL" into the target list.
func parseTargets(spec string) ([]obswatch.Target, error) {
	var out []obswatch.Target
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		kind, rest, ok := strings.Cut(item, ":")
		if !ok {
			return nil, fmt.Errorf("bad target %q (want kind:name=URL)", item)
		}
		name, url, ok := strings.Cut(rest, "=")
		if !ok {
			return nil, fmt.Errorf("bad target %q (want kind:name=URL)", item)
		}
		switch kind {
		case obswatch.KindLBD, obswatch.KindHarvestd, obswatch.KindHarvestagg, obswatch.KindRolloutd:
		default:
			return nil, fmt.Errorf("unknown target kind %q in %q", kind, item)
		}
		out = append(out, obswatch.Target{Kind: kind, Name: name, URL: url})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no targets given (want -targets kind:name=URL,...)")
	}
	return out, nil
}
