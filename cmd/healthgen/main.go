// Command healthgen emits machine-health exploration datasets (JSONL) for
// offline experimentation: either full-feedback-derived uniform exploration
// (the paper's simulated-randomization protocol) or the raw full-feedback
// rewards for every wait action.
//
// Usage:
//
//	healthgen [-n N] [-seed S] [-o PATH] [-normalize]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/healthsim"
	"repro/internal/learn"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "healthgen:", err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", 10000, "number of failure episodes")
	seed := flag.Int64("seed", 1, "RNG seed")
	out := flag.String("o", "-", "output path (- for stdout)")
	normalize := flag.Bool("normalize", false, "map rewards into [0,1] (1 = no downtime)")
	flag.Parse()

	if *n <= 0 {
		return fmt.Errorf("n must be positive")
	}
	root := stats.NewRand(*seed)
	gen, err := healthsim.NewGenerator(stats.Split(root), healthsim.DefaultConfig())
	if err != nil {
		return err
	}
	full := gen.Generate(*n)
	expl := learn.SimulateExploration(stats.Split(root), full)
	if *normalize {
		expl = healthsim.NormalizeRewards(expl, gen.MaxPossibleDowntime())
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := expl.WriteJSONL(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d exploration datapoints (9 wait actions, propensity 1/9)\n", len(expl))
	return nil
}
