// Package repro is a from-scratch Go reproduction of "Harvesting
// Randomness to Optimize Distributed Systems" (Lecuyer, Lockerman, Nelson,
// Sen, Sharma, Slivkins — HotNets 2017): off-policy evaluation of systems
// policies from the randomness those systems already emit, plus every
// substrate the paper's evaluation depends on (a machine-health generator,
// load-balancing simulators and a real HTTP reverse proxy, a Redis-like
// cache with a RESP server, an A/B-testing comparator, the hierarchical
// Front Door model, and chaos-style failure injection).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The root package holds the benchmark harness (bench_test.go): one
// benchmark per table/figure in the paper.
package repro
