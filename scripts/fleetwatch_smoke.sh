#!/bin/sh
# Fleetwatch smoke test over the rollout-demo topology (DESIGN.md §13):
# lbd serves a retunable canary blend, harvestd tails an exploration log,
# rolloutd gates the candidate — and fleetwatch scrapes all three, builds
# time series, and evaluates the standard alert table. A healthy demo
# fleet must produce scrape rounds and series on every target and ZERO
# open alerts; the live alert/status state lands in ALERTS_fleetwatch.json
# and the incident log must validate under tracecat -incidents. Headless
# (exits 0 on success), so CI runs it as the fleetwatch smoke test.
set -eu

TMP="${TMPDIR:-/tmp}/fleetwatch-smoke.$$"
mkdir -p "$TMP"
PIDS=""
cleanup() {
	[ -n "$PIDS" ] && kill $PIDS 2>/dev/null || true
	wait 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "== building lbd + harvestd + rolloutd + fleetwatch + tracecat"
go build -o "$TMP/lbd" ./cmd/lbd
go build -o "$TMP/harvestd" ./cmd/harvestd
go build -o "$TMP/rolloutd" ./cmd/rolloutd
go build -o "$TMP/fleetwatch" ./cmd/fleetwatch
go build -o "$TMP/tracecat" ./cmd/tracecat

: >"$TMP/access.log"

echo "== starting lbd (metrics :8470, share admin :8471)"
"$TMP/lbd" -backends 2 -requests 0 -log "" \
	-canary leastloaded -canary-share 0 \
	-metrics-addr 127.0.0.1:8470 -admin-addr 127.0.0.1:8471 &
PIDS="$PIDS $!"

echo "== starting harvestd tailing the exploration log (:8472)"
"$TMP/harvestd" -addr 127.0.0.1:8472 -policies uniform,leastloaded \
	-workers 1 -nginx "$TMP/access.log" -follow &
PIDS="$PIDS $!"

wait_http() { # URL
	for _ in $(seq 1 100); do
		curl -sf "$1" >/dev/null 2>&1 && return 0
		sleep 0.2
	done
	echo "fleetwatch smoke: timed out waiting for $1" >&2
	return 1
}
wait_http http://127.0.0.1:8470/metrics
wait_http http://127.0.0.1:8472/healthz

echo "== starting rolloutd gating leastloaded vs uniform (:8473)"
"$TMP/rolloutd" -addr 127.0.0.1:8473 \
	-harvest http://127.0.0.1:8472 \
	-candidate leastloaded -baseline uniform -objective min \
	-delta 0.1 -shares 0.05,0.25 -min-samples 400 -term-hi 0.03 \
	-poll-interval 200ms -actuate http://127.0.0.1:8471/share \
	-checkpoint "$TMP/rollout.ckpt" &
PIDS="$PIDS $!"
wait_http http://127.0.0.1:8473/healthz

# Promotions legitimately change gate outcomes (hold -> promote -> hold),
# so the flap threshold is raised above anything a healthy ramp produces.
echo "== starting fleetwatch scraping all three daemons (:8474)"
"$TMP/fleetwatch" -addr 127.0.0.1:8474 \
	-targets "lbd:lb=http://127.0.0.1:8470,harvestd:shard-a=http://127.0.0.1:8472,rolloutd:ctl=http://127.0.0.1:8473" \
	-interval 300ms -flap-threshold 8 \
	-incidents "$TMP/incidents.jsonl" &
PIDS="$PIDS $!"
wait_http http://127.0.0.1:8474/healthz

# Feed harvested exploration data (same synthetic workload as the rollout
# demo) so harvestd folds real records while fleetwatch watches.
append_chunk() { # SEED N
	awk -v seed="$1" -v n="$2" 'BEGIN {
		s = seed
		for (i = 0; i < n; i++) {
			s = (s * 48271) % 2147483647; a = s % 2
			s = (s * 48271) % 2147483647; c0 = s % 8
			s = (s * 48271) % 2147483647; c1 = s % 8
			min = c0 < c1 ? c0 : c1
			ca = a == 0 ? c0 : c1
			rt = ca == min ? 0.002 : 0.010
			printf "127.0.0.1:1 - - [06/Jul/2026:10:30:00 +0000] \"GET /r/%d HTTP/1.1\" 200 42 \"-\" \"t\" rt=%.6f upstream=%d conns=%d|%d prop=0.500000\n", i, rt, a, c0, c1
		}
	}' >>"$TMP/access.log"
}

echo "== feeding exploration bursts while fleetwatch scrapes"
for round in 1 2 3 4; do
	append_chunk "$((round * 7 + 3))" 1500
	sleep 1
	echo "  round $round: $(curl -sf http://127.0.0.1:8474/healthz)"
done

echo "== asserting fleetwatch state: all targets up, series flowing, no alerts"
healthz="$(curl -sf http://127.0.0.1:8474/healthz)"
echo "fleetwatch /healthz: $healthz"
case "$healthz" in
*"targets=3/3"*) ;;
*)
	echo "fleetwatch smoke: not all targets up" >&2
	curl -sf http://127.0.0.1:8474/status >&2 || true
	exit 1
	;;
esac
case "$healthz" in
*"firing=0"*) ;;
*)
	echo "fleetwatch smoke: unexpected open alerts on a healthy fleet" >&2
	curl -sf http://127.0.0.1:8474/alerts >&2 || true
	exit 1
	;;
esac

series="$(curl -sf http://127.0.0.1:8474/series)"
for want in watch_up harvestd_folded_total netlb_log_records_total rolloutd_uptime_seconds; do
	case "$series" in
	*"$want"*) ;;
	*)
		echo "fleetwatch smoke: no $want series collected" >&2
		exit 1
		;;
	esac
done

alerts="$(curl -sf http://127.0.0.1:8474/alerts)"
case "$alerts" in
"[]"*) ;;
*)
	echo "fleetwatch smoke: unexpected alerts: $alerts" >&2
	exit 1
	;;
esac

echo "== writing watcher state -> ALERTS_fleetwatch.json"
{
	printf '{\n"status": '
	curl -sf http://127.0.0.1:8474/status
	printf ',\n"alerts": '
	curl -sf http://127.0.0.1:8474/alerts
	printf '\n}\n'
} >ALERTS_fleetwatch.json

echo "== validating the incident log with tracecat -incidents"
"$TMP/tracecat" -incidents "$TMP/incidents.jsonl"

ticks="$(sed -n 's/.*"ticks": \([0-9]*\).*/\1/p' ALERTS_fleetwatch.json)"
echo "fleetwatch smoke: ok after $ticks scrape rounds, 3/3 targets up, zero alerts"
