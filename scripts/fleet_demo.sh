#!/bin/sh
# Demo of the federated harvestd tier (DESIGN.md §9): three shards ingest
# disjoint slices of one access log, harvestagg serves the fleet-wide
# merged estimates. The script then kills one shard (coverage degrades,
# intervals widen), revives it from its checkpoint, and shows the merged
# estimates recover. The fleet stays up afterwards for poking; Ctrl-C
# tears everything down.
set -eu

TMP="${TMPDIR:-/tmp}/fleet-demo.$$"
mkdir -p "$TMP"
cleanup() {
	kill $(jobs -p) 2>/dev/null || true
	wait 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "== building harvestd + harvestagg"
go build -o "$TMP/harvestd" ./cmd/harvestd
go build -o "$TMP/harvestagg" ./cmd/harvestagg

echo "== generating a 6000-line access log, split across 3 shards"
awk 'BEGIN {
	s = 7
	for (i = 0; i < 6000; i++) {
		s = (s * 48271) % 2147483647; a = s % 2
		s = (s * 48271) % 2147483647; k = s % 64
		s = (s * 48271) % 2147483647; c0 = s % 8
		s = (s * 48271) % 2147483647; c1 = s % 8
		printf "127.0.0.1:1 - - [06/Jul/2026:10:30:00 +0000] \"GET /r/%d HTTP/1.1\" 200 42 \"-\" \"t\" rt=%.6f upstream=%d conns=%d|%d prop=0.500000\n", i, k / 64, a, c0, c1
	}
}' >"$TMP/full.log"
awk 'NR % 3 == 1' "$TMP/full.log" >"$TMP/shard-0.log"
awk 'NR % 3 == 2' "$TMP/full.log" >"$TMP/shard-1.log"
awk 'NR % 3 == 0' "$TMP/full.log" >"$TMP/shard-2.log"

POLICIES=uniform,leastloaded,constant:0
start_shard() { # N PORT: boot shard-N on PORT with its slice + checkpoint
	"$TMP/harvestd" -addr "127.0.0.1:$2" -shard-id "shard-$1" \
		-policies "$POLICIES" -workers 1 -nginx "$TMP/shard-$1.log" \
		-checkpoint "$TMP/shard-$1.ckpt" -checkpoint-interval 1s &
}

echo "== starting 3 shards (:8451-:8453) and the aggregator (:8450)"
start_shard 0 8451
start_shard 1 8452
start_shard 2 8453
SHARD2_PID=$!
"$TMP/harvestagg" -addr 127.0.0.1:8450 -pull-interval 200ms -stale-after 2s \
	-checkpoint "$TMP/agg.ckpt" \
	-shards shard-0=http://127.0.0.1:8451,shard-1=http://127.0.0.1:8452,shard-2=http://127.0.0.1:8453 &

wait_metric() { # PORT PATTERN
	for _ in $(seq 1 150); do
		if curl -sf "http://127.0.0.1:$1/metrics" 2>/dev/null | grep -q "$2"; then
			return 0
		fi
		sleep 0.2
	done
	echo "fleet demo: timed out waiting for $2 on :$1" >&2
	return 1
}

wait_metric 8450 '^harvestagg_policy_n{policy="uniform"} 6000$'
echo
echo "== fleet-wide merged estimates (all 6000 datapoints, 3 shards live)"
curl -sf http://127.0.0.1:8450/estimates
echo
echo "== shard health"
curl -sf http://127.0.0.1:8450/shards

echo
echo "== killing shard-2: coverage drops to 4000, intervals widen"
kill "$SHARD2_PID" 2>/dev/null || true
wait_metric 8450 '^harvestagg_shards_live 2$'
wait_metric 8450 '^harvestagg_policy_n{policy="uniform"} 4000$'
curl -sf http://127.0.0.1:8450/estimates
echo
curl -sf http://127.0.0.1:8450/shards

echo
echo "== reviving shard-2 from its checkpoint (no log replay needed)"
"$TMP/harvestd" -addr 127.0.0.1:8453 -shard-id shard-2 \
	-policies "$POLICIES" -workers 1 -checkpoint "$TMP/shard-2.ckpt" &
wait_metric 8450 '^harvestagg_shards_live 3$'
wait_metric 8450 '^harvestagg_policy_n{policy="uniform"} 6000$'
echo "== merged estimates fully recovered"
curl -sf http://127.0.0.1:8450/estimates

echo
echo "fleet is live: http://127.0.0.1:8450/{estimates,diagnostics,shards,route?key=K,metrics}"
echo "Ctrl-C to stop."
wait
