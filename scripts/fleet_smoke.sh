#!/bin/sh
# CI smoke for the federated tier: two harvestd shards ingest a split
# fixture log and harvestagg must serve /estimates byte-identical to one
# monolithic daemon over the unsplit log (DESIGN.md §9 merge equivalence).
set -eu

TMP="${TMPDIR:-/tmp}/fleet-smoke.$$"
mkdir -p "$TMP"
cleanup() {
	kill $(jobs -p) 2>/dev/null || true
	wait 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

go build -o "$TMP/harvestd" ./cmd/harvestd
go build -o "$TMP/harvestagg" ./cmd/harvestagg

# Dyadic-exact fixture: propensity 1/2 and rewards k/64 are exact in both
# decimal and binary, so float summation is associative and the fleet-vs-
# monolithic comparison can demand byte equality, not tolerance equality.
awk 'BEGIN {
	s = 42
	for (i = 0; i < 3000; i++) {
		s = (s * 48271) % 2147483647; a = s % 2
		s = (s * 48271) % 2147483647; k = s % 64
		s = (s * 48271) % 2147483647; c0 = s % 8
		s = (s * 48271) % 2147483647; c1 = s % 8
		printf "127.0.0.1:1 - - [06/Jul/2026:10:30:00 +0000] \"GET /r/%d HTTP/1.1\" 200 42 \"-\" \"t\" rt=%.6f upstream=%d conns=%d|%d prop=0.500000\n", i, k / 64, a, c0, c1
	}
}' >"$TMP/full.log"
awk 'NR % 2 == 1' "$TMP/full.log" >"$TMP/shard-a.log"
awk 'NR % 2 == 0' "$TMP/full.log" >"$TMP/shard-b.log"

POLICIES=uniform,leastloaded,constant:0
"$TMP/harvestd" -addr 127.0.0.1:8441 -policies "$POLICIES" -workers 1 -nginx "$TMP/full.log" &
"$TMP/harvestd" -addr 127.0.0.1:8442 -shard-id shard-a -policies "$POLICIES" -workers 1 -nginx "$TMP/shard-a.log" &
"$TMP/harvestd" -addr 127.0.0.1:8443 -shard-id shard-b -policies "$POLICIES" -workers 1 -nginx "$TMP/shard-b.log" &
"$TMP/harvestagg" -addr 127.0.0.1:8440 -pull-interval 100ms \
	-shards shard-a=http://127.0.0.1:8442,shard-b=http://127.0.0.1:8443 &

# wait_metric PORT PATTERN: poll /metrics until a line matches.
wait_metric() {
	for _ in $(seq 1 150); do
		if curl -sf "http://127.0.0.1:$1/metrics" 2>/dev/null | grep -q "$2"; then
			return 0
		fi
		sleep 0.2
	done
	echo "fleet smoke: timed out waiting for $2 on :$1" >&2
	curl -s "http://127.0.0.1:$1/metrics" >&2 || true
	return 1
}

wait_metric 8441 '^harvestd_folded_total 3000$'
wait_metric 8440 '^harvestagg_shards_live 2$'
wait_metric 8440 '^harvestagg_policy_n{policy="uniform"} 3000$'
curl -sf http://127.0.0.1:8440/metrics | grep -q 'harvestagg_shard_up{shard="shard-a"} 1'
curl -sf http://127.0.0.1:8440/metrics | grep -q 'harvestagg_shard_up{shard="shard-b"} 1'

curl -sf http://127.0.0.1:8440/estimates >"$TMP/fleet.json"
curl -sf http://127.0.0.1:8441/estimates >"$TMP/mono.json"
cmp "$TMP/fleet.json" "$TMP/mono.json"

echo "fleet smoke OK: merged /estimates byte-identical to monolithic (n=3000, 3 policies)"
