#!/bin/sh
# Demo of the guarded rollout controller (DESIGN.md §12): lbd serves live
# traffic through a retunable leastloaded canary blend, harvestd tails a
# growing exploration log of uniformly randomized routing decisions, and
# rolloutd gates the candidate through shadow → canary → full from the
# counterfactual estimates alone — actuating lbd's real /share admin
# endpoint at every promotion. The machine-readable audit trail lands in
# GATES_rolloutd.json. Headless (no interaction, exits 0 on success), so CI
# runs it as the rollout smoke test.
set -eu

TMP="${TMPDIR:-/tmp}/rollout-demo.$$"
mkdir -p "$TMP"
# Track daemon PIDs explicitly: `kill $(jobs -p)` is unreliable in a trap
# under dash (the substitution runs in a subshell with an empty job table),
# which leaks the daemons and leaves `wait` hanging forever.
PIDS=""
cleanup() {
	[ -n "$PIDS" ] && kill $PIDS 2>/dev/null || true
	wait 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "== building lbd + harvestd + rolloutd"
go build -o "$TMP/lbd" ./cmd/lbd
go build -o "$TMP/harvestd" ./cmd/harvestd
go build -o "$TMP/rolloutd" ./cmd/rolloutd

: >"$TMP/access.log"

echo "== starting lbd with a retunable leastloaded canary (share admin :8456)"
"$TMP/lbd" -backends 2 -requests 0 -log "" \
	-canary leastloaded -canary-share 0 -admin-addr 127.0.0.1:8456 &
PIDS="$PIDS $!"

echo "== starting harvestd tailing the exploration log (:8455)"
"$TMP/harvestd" -addr 127.0.0.1:8455 -policies uniform,leastloaded \
	-workers 1 -nginx "$TMP/access.log" -follow &
PIDS="$PIDS $!"

wait_http() { # URL
	for _ in $(seq 1 100); do
		curl -sf "$1" >/dev/null 2>&1 && return 0
		sleep 0.2
	done
	echo "rollout demo: timed out waiting for $1" >&2
	return 1
}
wait_http http://127.0.0.1:8455/healthz
wait_http http://127.0.0.1:8456/share

echo "== starting rolloutd gating leastloaded vs uniform (:8457)"
"$TMP/rolloutd" -addr 127.0.0.1:8457 \
	-harvest http://127.0.0.1:8455 \
	-candidate leastloaded -baseline uniform -objective min \
	-delta 0.1 -shares 0.05,0.25 -min-samples 400 -term-hi 0.03 \
	-poll-interval 200ms -actuate http://127.0.0.1:8456/share \
	-checkpoint "$TMP/rollout.ckpt" &
PIDS="$PIDS $!"
wait_http http://127.0.0.1:8457/healthz

# Append harvested exploration data in bursts: uniformly randomized routing
# (prop=0.5) whose request time is fast exactly when the chosen backend was
# the less loaded one — so leastloaded is counterfactually, measurably
# better than the uniform incumbent, and each stage gets fresh evidence.
append_chunk() { # SEED N
	awk -v seed="$1" -v n="$2" 'BEGIN {
		s = seed
		for (i = 0; i < n; i++) {
			s = (s * 48271) % 2147483647; a = s % 2
			s = (s * 48271) % 2147483647; c0 = s % 8
			s = (s * 48271) % 2147483647; c1 = s % 8
			min = c0 < c1 ? c0 : c1
			ca = a == 0 ? c0 : c1
			rt = ca == min ? 0.002 : 0.010
			printf "127.0.0.1:1 - - [06/Jul/2026:10:30:00 +0000] \"GET /r/%d HTTP/1.1\" 200 42 \"-\" \"t\" rt=%.6f upstream=%d conns=%d|%d prop=0.500000\n", i, rt, a, c0, c1
		}
	}' >>"$TMP/access.log"
}

stage_of() {
	curl -sf http://127.0.0.1:8457/healthz | sed -n 's/^ok stage=\([a-z]*\).*/\1/p'
}

echo "== feeding exploration bursts until the controller walks the ramp to full"
round=0
while [ "$(stage_of)" != "full" ]; do
	round=$((round + 1))
	if [ "$round" -gt 40 ]; then
		echo "rollout demo: controller never reached full" >&2
		curl -sf http://127.0.0.1:8457/status >&2 || true
		exit 1
	fi
	append_chunk "$((round * 7 + 3))" 1500
	sleep 1
	echo "  round $round: stage=$(stage_of) lbd share=$(curl -sf http://127.0.0.1:8456/share)"
done

echo
echo "== candidate at full exposure; lbd's live share followed the whole ramp"
share="$(curl -sf http://127.0.0.1:8456/share)"
echo "lbd /share: $share"
case "$share" in
*'"share":1'*) ;;
*)
	echo "rollout demo: lbd share did not reach 1" >&2
	exit 1
	;;
esac

echo
echo "== stage history"
curl -sf http://127.0.0.1:8457/history

echo "== writing machine-readable gate audit trail -> GATES_rolloutd.json"
curl -sf http://127.0.0.1:8457/gates >GATES_rolloutd.json
grep -q '"outcome": "promote"' GATES_rolloutd.json || {
	echo "rollout demo: no promote decision in gate history" >&2
	exit 1
}
echo "rollout demo: reached full in $round rounds with $(grep -c '"outcome": "promote"' GATES_rolloutd.json) promotions ($(grep -c '"seq"' GATES_rolloutd.json) gate decisions)"
