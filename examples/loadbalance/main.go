// Load balancing over real HTTP: Table 2's breakage, live.
//
// We start two real backend servers (backend 1 slower) and a reverse proxy
// that routes uniformly at random, writing an Nginx-style access log. We
// push Poisson traffic through the proxy, scavenge the log with the
// harvester, and evaluate candidate policies offline with ips. Then we
// *deploy* the tempting "send everything to the fast backend" policy and
// watch it fall apart — the violation of CB assumption A1 (§5).
//
// Run: go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/harvester"
	"repro/internal/lbsim"
	"repro/internal/netlb"
	"repro/internal/ope"
	"repro/internal/policy"
	"repro/internal/stats"
)

func main() {
	root := stats.NewRand(1)

	// Two real HTTP backends; service time grows with in-flight requests
	// and backend 1 carries an additive constant (Fig. 5, scaled to ms).
	b0, err := netlb.StartBackend(0, 4*time.Millisecond, 1500*time.Microsecond)
	if err != nil {
		log.Fatal(err)
	}
	defer b0.Close()
	b1, err := netlb.StartBackend(1, 8*time.Millisecond, 1500*time.Microsecond)
	if err != nil {
		log.Fatal(err)
	}
	defer b1.Close()

	fmt.Println("phase 1: collect exploration data under random routing")
	var logBuf strings.Builder
	proxy, err := netlb.NewProxy(
		[]string{b0.Addr(), b1.Addr()},
		policy.UniformRandom{R: stats.Split(root)},
		stats.Split(root), &logBuf)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := proxy.Start(); err != nil {
		log.Fatal(err)
	}
	loadRes, err := netlb.GenerateLoad(proxy.URL(), 1200, 500, stats.Split(root))
	if err != nil {
		log.Fatal(err)
	}
	randomMean := loadRes.Mean()
	proxy.Close()
	fmt.Printf("  %d requests, mean latency %v\n", len(loadRes.Latencies), randomMean)

	fmt.Println("\nphase 2: scavenge the access log (step 1) and evaluate offline (step 3)")
	entries, err := harvester.ScavengeNginx(strings.NewReader(logBuf.String()))
	if err != nil {
		log.Fatal(err)
	}
	ds, skipped, err := harvester.NginxToDataset(entries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  harvested %d datapoints (%d skipped)\n", len(ds), skipped)
	sendTo0 := policy.Constant{A: 0}
	est, err := (ope.IPS{}).Estimate(sendTo0, ds)
	if err != nil {
		log.Fatal(err)
	}
	llEst, err := (ope.IPS{}).Estimate(lbsim.LeastLoaded{}, ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ips('send to fast backend') = %.1fms  ← looks great!\n", 1000*est.Value)
	fmt.Printf("  ips('least loaded')         = %.1fms\n", 1000*llEst.Value)

	fmt.Println("\nphase 3: actually deploy 'send to fast backend'")
	proxy2, err := netlb.NewProxy(
		[]string{b0.Addr(), b1.Addr()}, sendTo0, stats.Split(root), nil)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := proxy2.Start(); err != nil {
		log.Fatal(err)
	}
	defer proxy2.Close()
	deployRes, err := netlb.GenerateLoad(proxy2.URL(), 1200, 500, stats.Split(root))
	if err != nil {
		log.Fatal(err)
	}
	deployMean := deployRes.Mean()
	fmt.Printf("  deployed mean latency %v (offline estimate said %.1fms)\n",
		deployMean, 1000*est.Value)

	ratio := float64(deployMean) / (float64(time.Second) * est.Value)
	fmt.Printf("\noffline evaluation was off by %.1fx — prior routing decisions shape the\n", ratio)
	fmt.Println("context (server load), so CB assumption A1 fails and ips misleads (§5).")
	if ratio < 1.3 {
		log.Fatal("expected a clear offline/online gap")
	}
}
