// Quickstart: the 60-second tour of harvesting randomness.
//
// A toy system makes randomized decisions (uniform over 3 actions); we
// scavenge its ⟨x, a, r, p⟩ log, then evaluate three candidate policies
// offline with inverse propensity scoring — no deployment required — and
// check the winner against ground truth.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/ope"
	"repro/internal/policy"
	"repro/internal/stats"
)

// trueReward is the hidden reward surface: action 2 is best when the
// context feature is high, action 0 when it is low.
func trueReward(x core.Vector, a core.Action) float64 {
	switch a {
	case 0:
		return 1 - x[0]
	case 1:
		return 0.55
	default:
		return x[0]
	}
}

func main() {
	r := stats.NewRand(42)

	// Step 1 (scavenge): the deployed system already randomizes — collect
	// its exploration log.
	logged := make(core.Dataset, 20000)
	for i := range logged {
		x := core.Vector{r.Float64()}
		a := core.Action(r.Intn(3))
		logged[i] = core.Datapoint{
			Context:    core.Context{Features: x, NumActions: 3},
			Action:     a,
			Reward:     trueReward(x, a) + r.NormFloat64()*0.05,
			Propensity: 1.0 / 3, // step 2 (infer): known from code inspection
		}
	}

	// Step 3 (evaluate): score candidate policies offline.
	candidates := map[string]core.Policy{
		"always-0":  policy.Constant{A: 0},
		"always-1":  policy.Constant{A: 1},
		"threshold": policy.Stump{Idx: 0, Cut: 0.5, Below: 0, Above: 2},
	}
	fmt.Println("off-policy estimates (never deployed!):")
	names := make([]string, 0, len(candidates))
	for name := range candidates {
		names = append(names, name)
	}
	sort.Strings(names)
	best, bestVal := "", -1.0
	for _, name := range names {
		pol := candidates[name]
		est, err := (ope.IPS{}).Estimate(pol, logged)
		if err != nil {
			log.Fatal(err)
		}
		iv := est.ConfidenceInterval(0.05)
		fmt.Printf("  %-10s %s\n", name, iv)
		if est.Value > bestVal {
			best, bestVal = name, est.Value
		}
	}

	// Verify against ground truth (only possible because this is a toy).
	eval := stats.NewRand(7)
	var truth stats.Welford
	for i := 0; i < 100000; i++ {
		x := core.Vector{eval.Float64()}
		ctx := core.Context{Features: x, NumActions: 3}
		truth.Add(trueReward(x, candidates[best].Act(&ctx)))
	}
	fmt.Printf("\nwinner: %s (offline %.3f, true value %.3f)\n", best, bestVal, truth.Mean())
	if best != "threshold" {
		log.Fatal("expected the contextual policy to win")
	}
}
