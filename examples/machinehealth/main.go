// Machine health: the paper's §4 pipeline end to end.
//
// The Azure Compute scenario: a machine goes unresponsive and the
// controller chooses how long to wait before rebooting. The deployed
// policy waits the maximum time, which reveals the downtime of every
// shorter wait — full feedback. We:
//
//  1. generate the full-feedback dataset (our synthetic substitute),
//  2. simulate partial-feedback exploration from it (reveal one random
//     action's reward per episode, with propensity 1/9),
//  3. evaluate a candidate policy offline with ips and compare against
//     the full-feedback ground truth (Fig. 3's mechanism), and
//  4. train a CB policy from the exploration data and compare it with
//     the idealized supervised model and the deployed default (Fig. 4).
//
// Run: go run ./examples/machinehealth
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/healthsim"
	"repro/internal/learn"
	"repro/internal/ope"
	"repro/internal/stats"
)

func main() {
	root := stats.NewRand(1)
	gen, err := healthsim.NewGenerator(stats.Split(root), healthsim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 1. Full-feedback data, as Azure's max-wait default produces.
	train := gen.Generate(10000)
	test := gen.Generate(5000)
	fmt.Printf("generated %d training and %d test episodes (%d wait actions)\n",
		len(train), len(test), healthsim.NumWaitActions)

	// 2. Simulated exploration: one ⟨x, a, r, p⟩ tuple per episode.
	expl := learn.SimulateExploration(stats.Split(root), train)

	// 3. Off-policy evaluation of a fixed candidate: "wait 3 minutes"
	// (action 2), scored on the normalized [0,1] reward scale.
	candidate := core.PolicyFunc(func(*core.Context) core.Action { return 2 })
	maxDown := gen.MaxPossibleDowntime()
	explTest := learn.SimulateExploration(stats.Split(root), test)
	est, err := (ope.IPS{}).Estimate(candidate, healthsim.NormalizeRewards(explTest, maxDown))
	if err != nil {
		log.Fatal(err)
	}
	truth := 0.0
	for i := range test {
		row := &test[i]
		d := -row.Rewards[candidate.Act(&row.Context)]
		truth += 1 - math.Min(d, maxDown)/maxDown
	}
	truth /= float64(len(test))
	fmt.Printf("\noff-policy estimate of 'wait 3 min': %.4f (truth %.4f, rel err %.1f%%)\n",
		est.Value, truth, 100*math.Abs(est.Value-truth)/truth)

	// 4. Optimize: CB policy from exploration vs full-feedback baseline.
	cbModel, err := learn.FitRewardModel(expl, learn.FitOptions{NumActions: healthsim.NumWaitActions})
	if err != nil {
		log.Fatal(err)
	}
	ffModel, err := learn.FitFullFeedback(train, 0)
	if err != nil {
		log.Fatal(err)
	}
	cbDown := -test.MeanReward(cbModel.GreedyPolicy(false))
	ffDown := -test.MeanReward(ffModel.GreedyPolicy(false))
	defDown := -test.MeanReward(healthsim.DefaultPolicy())
	optDown := -test.OptimalMeanReward(false)
	fmt.Printf("\nmean downtime on held-out episodes (minutes):\n")
	fmt.Printf("  deployed default (max wait)   %.2f\n", defDown)
	fmt.Printf("  CB policy (exploration data)  %.2f  (%.1f%% above full feedback)\n",
		cbDown, 100*(cbDown-ffDown)/ffDown)
	fmt.Printf("  full-feedback supervised      %.2f\n", ffDown)
	fmt.Printf("  omniscient lower bound        %.2f\n", optDown)
	if cbDown >= defDown {
		log.Fatal("CB policy should beat the deployed default")
	}
	fmt.Println("\nthe CB policy was found without deploying anything — that is the point.")
}
