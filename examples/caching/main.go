// Caching: Table 3 end to end on the Redis-like substrate.
//
// A cache with Redis-style sampled eviction runs a big/small workload
// (large items queried twice as often but four times as big) under random
// eviction — the harvestable randomness. We scavenge its eviction and
// access logs, reconstruct time-to-next-access rewards by looking ahead,
// train a CB eviction model, and measure every policy's hitrate online.
// The punchline is the paper's: greedy CB (and LRU) keep the
// soon-to-be-requested large items and do no better than random; only the
// policy that explicitly weighs frequency against *size* wins.
//
// Run: go run ./examples/caching
package main

import (
	"fmt"
	"log"

	"repro/internal/cachesim"
	"repro/internal/harvester"
	"repro/internal/learn"
	"repro/internal/stats"
)

func main() {
	root := stats.NewRand(1)
	w := cachesim.DefaultBigSmall()
	fmt.Printf("workload: %d large items (%dB, weight %.0fx) + %d small items (%dB)\n",
		w.NumLarge, w.LargeSize, w.LargeWeight, w.NumSmall, w.SmallSize)

	const requests = 60000

	// Phase 1: run the randomized system with logging (this is also the
	// "Random" row of the table).
	cfg := cachesim.Table3CacheConfig(w)
	fmt.Printf("cache budget: %d bytes (half the working set), %d-candidate sampling\n\n",
		cfg.MaxBytes, cfg.SampleSize)
	randomCache, err := cachesim.New(cfg, cachesim.RandomEvictor{R: stats.Split(root)}, stats.Split(root))
	if err != nil {
		log.Fatal(err)
	}
	randomHR, err := cachesim.Replay(randomCache, w, stats.Split(root), requests)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 2: harvest ⟨x,a,r,p⟩ — rewards reconstructed by look-ahead.
	expl, err := harvester.HarvestEvictions(randomCache.EvictionLog(), randomCache.AccessLog(), 2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("harvested %d eviction decisions with look-ahead rewards\n", len(expl))
	model, err := learn.FitRewardModel(expl, learn.FitOptions{Lambda: 1e-3})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 3: deploy every candidate policy and measure hitrates.
	results := []struct {
		name string
		hr   float64
	}{{"Random", randomHR}}
	quiet := cfg
	quiet.LogAccesses, quiet.LogEvictions = false, false
	for _, cand := range []struct {
		name string
		ev   cachesim.Evictor
	}{
		{"LRU", cachesim.LRUEvictor{}},
		{"LFU", cachesim.LFUEvictor{}},
		{"CB policy", cachesim.CBEvictor{Model: model}},
		{"Freq/size", cachesim.FreqSizeEvictor{}},
	} {
		c, err := cachesim.New(quiet, cand.ev, stats.Split(root))
		if err != nil {
			log.Fatal(err)
		}
		hr, err := cachesim.Replay(c, w, stats.Split(root), requests)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, struct {
			name string
			hr   float64
		}{cand.name, hr})
	}

	fmt.Println("\nhitrates (paper Table 3 shape):")
	var random, fs float64
	for _, r := range results {
		fmt.Printf("  %-10s %.1f%%\n", r.name, 100*r.hr)
		switch r.name {
		case "Random":
			random = r.hr
		case "Freq/size":
			fs = r.hr
		}
	}
	fmt.Printf("\nonly the size-aware policy beats random (+%.1f points): greedy policies\n", 100*(fs-random))
	fmt.Println("ignore the opportunity cost of space — a long-term effect CB cannot see (§5).")
	if fs < random+0.05 {
		log.Fatal("expected freq/size to win clearly")
	}
}
