// Continuous harvesting: the paper's "off-policy evaluation may
// incrementally update; it just does not intervene in a live (online)
// system" as a running service.
//
// We start two real HTTP backends and a reverse proxy that routes uniformly
// at random, writing an Nginx-style access log. While traffic flows, a
// harvestd daemon tails the growing log and keeps per-policy IPS / clipped
// IPS / SNIPS estimates for a registry of candidates, served over HTTP. We
// scrape the API mid-run to watch the estimates converge, stop the daemon
// (it checkpoints), restart it, and show that it resumes with identical
// state — then verify the winning candidate by deploying it for real.
//
// Run: go run ./examples/continuous
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/harvestd"
	"repro/internal/lbsim"
	"repro/internal/netlb"
	"repro/internal/policy"
	"repro/internal/stats"
)

func main() {
	root := stats.NewRand(1)
	dir, err := os.MkdirTemp("", "continuous")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	logPath := filepath.Join(dir, "access.log")
	ckptPath := filepath.Join(dir, "harvestd.ckpt")
	logF, err := os.Create(logPath)
	if err != nil {
		log.Fatal(err)
	}
	defer logF.Close()

	// The live system: two backends (backend 1 slower) behind a uniformly
	// randomized proxy — the harvestable logging policy.
	var addrs []string
	for i, base := range []time.Duration{4 * time.Millisecond, 8 * time.Millisecond} {
		b, err := netlb.StartBackend(i, base, 1500*time.Microsecond)
		if err != nil {
			log.Fatal(err)
		}
		defer b.Close()
		addrs = append(addrs, b.Addr())
	}
	proxy, err := netlb.NewProxy(addrs, policy.UniformRandom{R: stats.Split(root)}, stats.Split(root), logF)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := proxy.Start(); err != nil {
		log.Fatal(err)
	}
	defer proxy.Close()

	// The evaluation service: tail the log as it grows, estimate candidates.
	newDaemon := func() *harvestd.Daemon {
		reg, err := harvestd.NewRegistry(2, 10)
		if err != nil {
			log.Fatal(err)
		}
		must := func(e error) {
			if e != nil {
				log.Fatal(e)
			}
		}
		must(reg.Register("uniform", policy.UniformRandom{}))
		must(reg.Register("leastloaded", lbsim.LeastLoaded{}))
		must(reg.Register("always-0", policy.Constant{A: 0}))
		d, err := harvestd.New(harvestd.Config{
			Workers: 2, Clip: 10, Addr: "127.0.0.1:0", CheckpointPath: ckptPath,
		}, reg)
		if err != nil {
			log.Fatal(err)
		}
		d.AddSource(&harvestd.NginxSource{Path: logPath, Follow: true, Poll: 5 * time.Millisecond})
		return d
	}

	ctx := context.Background()
	d := newDaemon()
	if err := d.Start(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("harvestd live at %s/estimates\n\n", d.URL())

	// Traffic flows; the daemon harvests it as it lands in the log.
	go func() {
		if _, err := netlb.GenerateLoad(proxy.URL(), 1500, 300, stats.Split(root)); err != nil {
			log.Fatal(err)
		}
	}()
	for _, at := range []int{200, 800, 1500} {
		for {
			if pe, ok := d.Registry().Estimate("leastloaded", 0.05); ok && pe.N >= int64(at) {
				fmt.Printf("after %4d requests: leastloaded SNIPS = %.4fs ± %.4f  [n=%d]\n",
					at, pe.SNIPS.Value, pe.SNIPS.StdErr, pe.N)
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Stop (writes a checkpoint), restart, resume identically.
	if err := d.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	before, _ := d.Registry().Estimate("leastloaded", 0.05)
	d2 := newDaemon()
	if err := d2.Start(ctx); err != nil {
		log.Fatal(err)
	}
	after, _ := d2.Registry().Estimate("leastloaded", 0.05)
	fmt.Printf("\nrestart: n %d → %d, SNIPS %.6f → %.6f (resumed from checkpoint)\n\n",
		before.N, after.N, before.SNIPS.Value, after.SNIPS.Value)

	fmt.Println("offline estimates (uniform logging run):")
	for _, pe := range d2.Estimates() {
		fmt.Printf("  %-12s SNIPS %.4fs ± %.4f  (match rate %.2f)\n",
			pe.Policy, pe.SNIPS.Value, pe.SNIPS.StdErr, pe.MatchRate)
	}
	if err := d2.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}

	// Deploy the winner for real and compare.
	proxy2, err := netlb.NewProxy(addrs, lbsim.LeastLoaded{}, stats.Split(root), nil)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := proxy2.Start(); err != nil {
		log.Fatal(err)
	}
	defer proxy2.Close()
	res, err := netlb.GenerateLoad(proxy2.URL(), 1500, 300, stats.Split(root))
	if err != nil {
		log.Fatal(err)
	}
	ll, _ := d2.Registry().Estimate("leastloaded", 0.05)
	fmt.Printf("\ndeployed least-loaded: measured mean %.4fs vs harvested estimate %.4fs\n",
		res.Mean().Seconds(), ll.SNIPS.Value)
}
