// Chaos failover: harvesting an outage on real HTTP (§5, exploration
// coverage).
//
// A uniform-random load balancer "almost never chooses the same server
// twenty times in a row", so its logs cannot evaluate long-horizon policies
// like send-to-1. But reliability testing — killing a backend, Chaos Monkey
// style — makes the system's own failover concentrate all traffic on the
// survivor. We run that on a real proxy with health checks, harvest the
// access log through the outage, and measure how much richer the action-
// sequence coverage becomes.
//
// Run: go run ./examples/chaosfailover
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/harvester"
	"repro/internal/netlb"
	"repro/internal/policy"
	"repro/internal/stats"
)

func main() {
	root := stats.NewRand(1)
	b0, err := netlb.StartBackend(0, 2*time.Millisecond, 200*time.Microsecond)
	if err != nil {
		log.Fatal(err)
	}
	defer b0.Close()
	b1, err := netlb.StartBackend(1, 3*time.Millisecond, 200*time.Microsecond)
	if err != nil {
		log.Fatal(err)
	}
	defer b1.Close()

	health, err := netlb.NewHealthChecker([]string{b0.Addr(), b1.Addr()}, time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	var logBuf strings.Builder
	proxy, err := netlb.NewProxy(
		[]string{b0.Addr(), b1.Addr()},
		policy.UniformRandom{R: stats.Split(root)},
		stats.Split(root), &logBuf)
	if err != nil {
		log.Fatal(err)
	}
	proxy.SetHealthChecker(health)
	if _, err := proxy.Start(); err != nil {
		log.Fatal(err)
	}
	defer proxy.Close()

	get := func(n int) {
		for i := 0; i < n; i++ {
			resp, err := http.Get(proxy.URL() + "/r")
			if err != nil {
				log.Fatal(err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}

	fmt.Println("phase 1: normal operation (random routing)")
	get(150)
	fmt.Println("phase 2: chaos! backend 1 goes down; failover concentrates traffic")
	health.SetHealth(1, false)
	get(100)
	fmt.Println("phase 3: backend 1 recovers")
	health.SetHealth(1, true)
	get(150)

	// Harvest the whole incident from the access log.
	entries, err := harvester.ScavengeNginx(strings.NewReader(logBuf.String()))
	if err != nil {
		log.Fatal(err)
	}
	ds, skipped, err := harvester.NginxToDataset(entries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nharvested %d datapoints (%d skipped) across the outage\n", len(ds), skipped)

	cov, err := chaos.MeasureCoverage(ds, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("longest same-backend run: %d requests (runs ≥ 20: %d)\n",
		cov.LongestRun, cov.RunsAtLeast[20])
	fmt.Printf("max single-backend share in any 20-request window: %.0f%%\n",
		100*cov.ActionShareMax)
	if cov.LongestRun < 50 {
		log.Fatal("expected the outage to create a long single-backend run")
	}
	// The outage period logged propensity 1 (single-action support) —
	// visible in the records themselves.
	ones := 0
	for i := range ds {
		if ds[i].Propensity == 1 {
			ones++
		}
	}
	fmt.Printf("%d datapoints logged with propensity 1 — the failover window,\n", ones)
	fmt.Println("exactly the concentrated exploration long-horizon estimators need (§5).")
}
