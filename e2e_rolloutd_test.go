package repro

// End-to-end rollout test: a live netlb topology routes through a
// policy.DynamicBlend whose share a rollout.Controller retunes in-process,
// while harvestd tails the proxy's access log and serves the counterfactual
// estimates the controller gates on. A genuinely better candidate must walk
// shadow → canary → full on its own; a genuinely worse one must be caught
// and rolled back automatically — the full harvest → estimate → guarded
// deploy loop across real files, sockets, and HTTP.

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harvestd"
	"repro/internal/lbsim"
	"repro/internal/netlb"
	"repro/internal/policy"
	"repro/internal/rollout"
	"repro/internal/stats"
)

// rolloutWorld is one live topology: two strongly separated backends, a
// proxy logging randomized decisions, a harvestd tailing that log, and a
// controller gating the candidate's traffic share.
type rolloutWorld struct {
	blend *policy.DynamicBlend
	proxy *netlb.Proxy
	d     *harvestd.Daemon
	c     *rollout.Controller
	load  func(t *testing.T, n int)
}

// startRolloutWorld wires the loop for one candidate policy. The incumbent
// is uniform random (the exploration policy whose randomness harvestd
// harvests); backend 0 is ~25× faster than backend 1, so routing quality
// shows up immediately in the request-time reward.
func startRolloutWorld(t *testing.T, candName string, cand core.Policy, seed int64) *rolloutWorld {
	t.Helper()
	r := stats.NewRand(seed)
	addrs := make([]string, 2)
	for i := range addrs {
		base := time.Millisecond
		if i == 1 {
			base = 25 * time.Millisecond
		}
		be, err := netlb.StartBackend(i, base, 500*time.Microsecond)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { be.Close() })
		addrs[i] = be.Addr()
	}

	logPath := filepath.Join(t.TempDir(), "access.log")
	logF, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { logF.Close() })

	// The serving policy: candidate at a retunable share over the uniform
	// incumbent. The controller starts it at share 0 (shadow).
	blend, err := policy.NewDynamicBlend(cand, policy.UniformRandom{R: stats.Split(r)}, 0, stats.Split(r))
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := netlb.NewProxy(addrs, blend, stats.Split(r), logF)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proxy.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	reg, err := harvestd.NewRegistry(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(candName, cand); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("uniform", policy.UniformRandom{}); err != nil {
		t.Fatal(err)
	}
	d, err := harvestd.New(harvestd.Config{Workers: 2, Clip: 10, Addr: "127.0.0.1:0"}, reg)
	if err != nil {
		t.Fatal(err)
	}
	d.AddSource(&harvestd.NginxSource{Path: logPath, Follow: true, Poll: 5 * time.Millisecond})
	ctx := t.Context()
	if err := d.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Shutdown(context.Background()) })

	c, err := rollout.New(rollout.Config{
		Candidate: candName,
		Baseline:  "uniform",
		// Rewards are proxy-measured request times: lower is better.
		Objective: rollout.Minimize,
		Delta:     0.1,
		// One canary stage keeps the e2e wall time honest; the full ramp is
		// exercised by the deterministic simulation suite.
		CanaryShares:    []float64{0.25},
		MinStageSamples: 300,
		// Terms are weight × request-time; weights stay ≤ 2 against the
		// uniform logger and request times well under 60ms, so 0.12 bounds
		// them while keeping the EB range penalty small enough to decide.
		TermHi:       0.12,
		StaleAfter:   2 * time.Minute,
		PollInterval: 50 * time.Millisecond,
		Addr:         "127.0.0.1:0",
		Harvest:      &rollout.HTTPHarvest{BaseURL: d.URL()},
		Actuator: rollout.FuncActuator(func(_ context.Context, share float64) error {
			return blend.SetShare(share)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := c.Shutdown(sctx); err != nil {
			t.Errorf("controller shutdown: %v", err)
		}
	})

	loadRand := stats.Split(r)
	w := &rolloutWorld{blend: blend, proxy: proxy, d: d, c: c}
	w.load = func(t *testing.T, n int) {
		t.Helper()
		res, err := netlb.GenerateLoad(proxy.URL(), n, 500, stats.Split(loadRand))
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors > 0 {
			t.Fatalf("%d load errors", res.Errors)
		}
	}
	return w
}

// driveUntil pushes load in chunks until the controller reaches target (or
// any terminal stage), returning the stage it landed in.
func (w *rolloutWorld) driveUntil(t *testing.T, target rollout.Stage, deadline time.Duration) rollout.Stage {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		if st := w.c.Stage(); st == target || st == rollout.StageRolledBack {
			return st
		}
		if time.Now().After(end) {
			t.Fatalf("stage %s after %s, want %s", w.c.Stage(), deadline, target)
		}
		w.load(t, 250)
		// Let the tail and the control loop catch up with the burst.
		time.Sleep(150 * time.Millisecond)
	}
}

func (w *rolloutWorld) gateHistory(t *testing.T) []rollout.GateDecision {
	t.Helper()
	resp, err := http.Get(w.c.URL() + "/gates")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var gates []rollout.GateDecision
	if err := json.NewDecoder(resp.Body).Decode(&gates); err != nil {
		t.Fatal(err)
	}
	return gates
}

// TestE2ERolloutPromotesLiveCandidate deploys least-loaded — genuinely
// better than uniform on this topology — and requires the controller to
// walk it to full exposure with both statistical gates agreeing at every
// step, actuating the live blend as it goes.
func TestE2ERolloutPromotesLiveCandidate(t *testing.T) {
	if testing.Short() {
		t.Skip("live netlb topology in -short mode")
	}
	w := startRolloutWorld(t, "leastloaded", lbsim.LeastLoaded{}, 41)

	if got := w.driveUntil(t, rollout.StageFull, 120*time.Second); got != rollout.StageFull {
		t.Fatalf("ended at %s, want %s", got, rollout.StageFull)
	}
	if share := w.blend.Share(); share != 1 {
		t.Errorf("blend share %g after full promotion, want 1", share)
	}
	trs := w.c.Transitions()
	if len(trs) != 2 {
		t.Fatalf("transitions %+v, want shadow->canary->full", trs)
	}
	if trs[0].To != rollout.StageCanary || trs[0].Share != 0.25 {
		t.Errorf("first transition %+v, want canary at 0.25", trs[0])
	}
	if trs[1].To != rollout.StageFull || trs[1].Share != 1 {
		t.Errorf("second transition %+v, want full at 1", trs[1])
	}
	var promotes int
	for _, g := range w.gateHistory(t) {
		if g.Outcome == rollout.OutcomePromote {
			promotes++
		}
	}
	if promotes != 2 {
		t.Errorf("%d promote decisions in gate history, want 2", promotes)
	}
}

// TestE2ERolloutRollsBackBadCandidate injects a policy that always routes
// to the slow backend. The controller must catch the regression from the
// harvested randomness alone — the candidate never gets traffic — and land
// in the terminal rolled-back stage with the blend still at share 0.
func TestE2ERolloutRollsBackBadCandidate(t *testing.T) {
	if testing.Short() {
		t.Skip("live netlb topology in -short mode")
	}
	w := startRolloutWorld(t, "slowest", policy.Constant{A: 1}, 43)

	if got := w.driveUntil(t, rollout.StageRolledBack, 120*time.Second); got != rollout.StageRolledBack {
		t.Fatalf("ended at %s, want %s", got, rollout.StageRolledBack)
	}
	if share := w.blend.Share(); share != 0 {
		t.Errorf("blend share %g after rollback, want 0", share)
	}
	trs := w.c.Transitions()
	if len(trs) != 1 || trs[0].To != rollout.StageRolledBack {
		t.Fatalf("transitions %+v, want a single rollback", trs)
	}
	if !strings.Contains(trs[0].Reason, "regression") {
		t.Errorf("rollback reason %q does not cite a regression", trs[0].Reason)
	}
	gates := w.gateHistory(t)
	if len(gates) == 0 {
		t.Fatal("empty gate history")
	}
	if last := gates[len(gates)-1]; last.Outcome != rollout.OutcomeRollback {
		t.Errorf("last gate outcome %s, want rollback", last.Outcome)
	}
}
