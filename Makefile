GO ?= go

.PHONY: all build vet lint lint-json wirelock test race bench bench-all bench-parallel experiments fuzz harvestd-demo trace-demo fleet-demo rollout-demo clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l . | tee /dev/stderr | wc -l | grep -q '^0$$'

# Repo-specific invariants the compiler cannot check: seeded RNG plumbing,
# guarded propensity divisions, virtual clocks in simulations, locks passed
# by pointer, no dropped errors, plus the dataflow analyses (propensity
# taint, map-order determinism, wire-struct locking, ctx-deaf loops). The
# committed baseline is empty and must stay empty. See internal/lint,
# DESIGN.md §6 and §11.
lint:
	$(GO) run ./cmd/harvestlint -baseline internal/lint/baseline.txt ./...

# Machine-readable diagnostics for CI artifact upload (same gate as lint).
lint-json:
	$(GO) run ./cmd/harvestlint -baseline internal/lint/baseline.txt -json ./... > LINT_harvestlint.json

# Regenerate internal/lint/wire.lock from the watched wire structs. Refuses
# a struct whose field set changed without its version constant moving; CI
# regenerates and fails on diff, so schema bumps are always deliberate.
wirelock:
	$(GO) run ./cmd/harvestlint -wirelock

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused federation + ingest + rollout hot-path benchmarks (per-line fold,
# accumulator merge, registry fan-out, snapshot encode/decode, router
# assignment, binary codec, end-to-end source→fold ingest per format, gate
# evaluation and state transition), emitted as BENCH_harvestd.json for CI
# trend tracking. IngestBin records/s vs IngestJSONL is the binary format's
# ≥5x claim; the binrec decode benchmark pins 0 allocs/op. bench-all is the
# full sweep.
bench:
	$(GO) test -run NONE -bench 'AccumFold|AccumMerge|RegistryFold|SnapshotEncode|SnapshotDecode|RouterAssign|BinRecEncode|BinRecDecode|IngestNginx|IngestJSONL|IngestBin|GateEval|StateTransition' \
		-benchmem ./internal/harvestd ./internal/fleet ./internal/harvester/binrec ./internal/rollout | $(GO) run ./cmd/benchjson -o BENCH_harvestd.json
	@cat BENCH_harvestd.json

bench-all:
	$(GO) test -bench=. -benchmem ./...

# Serial-vs-parallel scaling of the deterministic replicate scheduler
# (fig3 + table2 replicate loops at workers = 1, 2, NumCPU).
bench-parallel:
	$(GO) test . -bench=BenchmarkHarvestAllParallel -run=NONE -benchtime=1x -count=3

# Regenerate every paper table/figure and the extension experiments.
experiments:
	$(GO) run ./cmd/harvest all

# Launch the live demo topology: lbd serves randomized-routing traffic and
# writes an access log; harvestd tails it and serves live counterfactual
# estimates. Ctrl-C stops both (harvestd checkpoints on the way down).
harvestd-demo:
	@rm -f /tmp/harvestd-demo.log && touch /tmp/harvestd-demo.log
	$(GO) run ./cmd/lbd -backends 2 -policy random -log /tmp/harvestd-demo.log -requests 0 & \
	trap 'kill %1 2>/dev/null' EXIT INT TERM; \
	sleep 1; \
	echo "live estimates: http://127.0.0.1:8347/estimates (metrics: /metrics)"; \
	$(GO) run ./cmd/harvestd -nginx /tmp/harvestd-demo.log -follow \
		-policies uniform,leastloaded,constant:0 \
		-checkpoint /tmp/harvestd-demo.ckpt

# Launch the federated demo topology: three harvestd shards over disjoint
# log slices, one harvestagg serving the merged fleet-wide estimates; kills
# and checkpoint-revives a shard along the way. Ctrl-C stops the fleet.
fleet-demo:
	sh scripts/fleet_demo.sh

# Launch the guarded-rollout demo topology: lbd serves live traffic through
# a retunable canary blend, harvestd tails a synthetic exploration log, and
# rolloutd walks leastloaded through shadow → canary → full, actuating
# lbd's /share admin endpoint at each gate. Headless; writes the gate audit
# trail to GATES_rolloutd.json and exits 0 — CI runs it as the rollout
# smoke test. See DESIGN.md §12.
rollout-demo:
	sh scripts/rollout_demo.sh

# Launch the rollout-demo topology with fleetwatch scraping every daemon:
# asserts all targets stay up, series flow, and zero alerts open on a
# healthy fleet, then validates the incident log with tracecat -incidents.
# Headless; writes the watcher state to ALERTS_fleetwatch.json and exits 0
# — CI runs it as the fleetwatch smoke test. See DESIGN.md §13.
fleetwatch-smoke:
	sh scripts/fleetwatch_smoke.sh

# Trace a quick fig3 run and validate/summarize the JSONL span trace:
# tracecat exits non-zero unless every line parses, IDs are unique, and
# every parent reference resolves.
trace-demo:
	$(GO) run ./cmd/harvest -quick -workers 2 -trace /tmp/harvest-fig3-trace.jsonl fig3
	$(GO) run ./cmd/tracecat /tmp/harvest-fig3-trace.jsonl

# Short fuzz pass over the wire-format parsers.
fuzz:
	$(GO) test -fuzz=FuzzReadValue -fuzztime=15s ./internal/resp/
	$(GO) test -fuzz=FuzzParseNginxLine -fuzztime=15s ./internal/harvester/
	$(GO) test -fuzz=FuzzCacheLogRoundTrip -fuzztime=15s ./internal/harvester/
	$(GO) test -fuzz=FuzzBinRecDecode -fuzztime=15s ./internal/harvester/binrec/
	$(GO) test -fuzz=FuzzBinRecRoundTrip -fuzztime=15s ./internal/harvester/binrec/

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
