GO ?= go

.PHONY: all build vet test race bench experiments fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l . | tee /dev/stderr | wc -l | grep -q '^0$$'

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/netlb/ ./internal/resp/ ./cmd/cacheload/

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure and the extension experiments.
experiments:
	$(GO) run ./cmd/harvest all

# Short fuzz pass over the wire-format parsers.
fuzz:
	$(GO) test -fuzz=FuzzReadValue -fuzztime=15s ./internal/resp/
	$(GO) test -fuzz=FuzzParseNginxLine -fuzztime=15s ./internal/harvester/
	$(GO) test -fuzz=FuzzCacheLogRoundTrip -fuzztime=15s ./internal/harvester/

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
